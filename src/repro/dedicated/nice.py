"""A NICE-PySE-style dedicated symbolic execution engine for MiniPy.

Like the real NICE (Canini et al., NSDI'12), this engine:

- wraps *integers* in symbolic proxies carrying an expression,
- hooks the interpretation of the program (here: its own small bytecode
  evaluator) to record branch conditions along a concrete run,
- explores by input re-execution: negate one recorded branch, solve,
  re-run the program from scratch with the new input,
- supports only part of the language (Table 4): symbolic strings,
  native methods and exceptions are out of scope; hitting them raises
  :class:`UnsupportedFeature`.

``legacy_not_bug=True`` replicates the branch-selection bug the paper
found in NICE via differential testing (§6.6): for ``if not <expr>``
statements the engine records the *un-negated* condition, so it explores
the wrong alternate branch, generating redundant tests and missing
feasible paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.interpreters.minipy.bytecode import BinOp, CodeObject, CompiledModule, Op, UnOp
from repro.interpreters.minipy.compiler import compile_source
from repro.lowlevel.expr import Expr, Sym, evaluate, mk_binop, negate_condition, truth_condition
from repro.solver.backend import SolverBackend
from repro.solver.constraints import ConstraintSet
from repro.solver.csp import make_default_solver


class UnsupportedFeature(ReproError):
    """The dedicated engine hit a language feature it does not model."""


_INSTANCE_COUNTER = 0


class SymInt:
    """Symbolic integer proxy (expression + nothing else; concrete values
    come from the engine's current input assignment)."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr

    def __repr__(self) -> str:
        return f"SymInt({self.expr!r})"


@dataclass
class DedicatedResult:
    paths: int
    tests: List[Dict[str, int]]
    duration: float
    runs: int
    branch_conditions: int
    unsupported: Optional[str] = None


_BIN_TO_EXPR = {
    BinOp.ADD: "add", BinOp.SUB: "sub", BinOp.MUL: "mul",
    BinOp.FLOORDIV: "div", BinOp.MOD: "mod", BinOp.EQ: "eq",
    BinOp.NE: "ne", BinOp.LT: "lt", BinOp.LE: "le",
    BinOp.GT: "gt", BinOp.GE: "ge",
}


@dataclass
class _Func:
    code_id: int


@dataclass
class _Builtin:
    builtin_id: int


class _Trace:
    """One concrete run: branch records (condition expr, taken)."""

    def __init__(self):
        self.records: List[Tuple[object, bool]] = []

    def signature(self) -> Tuple:
        return tuple((id(c), taken) for c, taken in self.records)


class DedicatedNiceEngine:
    """Concolic engine over MiniPy bytecode with re-execution."""

    #: the one guest language this hand-made engine understands — the
    #: point of §6.6 is that dedicated engines do *not* generalize.
    guest_language = "minipy"

    def __init__(
        self,
        source: str,
        legacy_not_bug: bool = False,
        solver: Optional[SolverBackend] = None,
        instr_budget: int = 400_000,
    ):
        self.module: CompiledModule = compile_source(source)
        self.legacy_not_bug = legacy_not_bug
        self.solver: SolverBackend = solver if solver is not None else make_default_solver()
        self.instr_budget = instr_budget
        self._var_counter = 0
        # Unique prefix per instance: the global Sym registry pins a
        # domain to each name.
        global _INSTANCE_COUNTER
        _INSTANCE_COUNTER += 1
        self._ns = f"d{_INSTANCE_COUNTER}:"

    # -- exploration loop (DART-style generational search) ----------------------

    def run(self, time_budget: float = 10.0, max_paths: int = 0) -> DedicatedResult:
        start = time.monotonic()
        seen: Set[Tuple] = set()
        tests: List[Dict[str, int]] = []
        worklist: List[Dict[str, int]] = [{}]
        queued: Set[Tuple] = set()
        runs = 0
        branch_count = 0
        unsupported = None
        while worklist:
            if time.monotonic() - start > time_budget:
                break
            if max_paths and len(seen) >= max_paths:
                break
            assignment = worklist.pop(0)
            self._var_counter = 0
            trace = _Trace()
            try:
                self._execute(assignment, trace)
            except UnsupportedFeature as exc:
                unsupported = str(exc)
                break
            except _Budget:
                pass
            runs += 1
            branch_count += len(trace.records)
            signature = trace.signature()
            if signature in seen:
                continue
            seen.add(signature)
            tests.append(dict(assignment))
            # Build the trace's path condition as one share-structure
            # chain; every negation query below extends a prefix of it.
            chain: List[ConstraintSet] = [ConstraintSet.empty()]
            for c, t in trace.records:
                node = chain[-1].append(
                    truth_condition(c) if t else negate_condition(c)
                )
                # The recorded run satisfied every prefix of its own
                # trace — let the backend answer incrementally.  Not in
                # legacy-bug mode: there the recorded polarity is wrong
                # by design, so the assignment is *not* a model.
                if not self.legacy_not_bug:
                    node.note_model(assignment)
                chain.append(node)
            # Expand: negate each suffix branch (deepest-first).
            for index in range(len(trace.records) - 1, -1, -1):
                cond, taken = trace.records[index]
                query = chain[index].append(
                    negate_condition(cond) if taken else truth_condition(cond)
                )
                key = query.key()
                if key in queued:
                    continue
                queued.add(key)
                result = self.solver.check(query, hint=assignment)
                if not result.is_sat:
                    continue
                merged = dict(assignment)
                merged.update(result.model)
                worklist.append(merged)
        return DedicatedResult(
            paths=len(seen),
            tests=tests,
            duration=time.monotonic() - start,
            runs=runs,
            branch_conditions=branch_count,
            unsupported=unsupported,
        )

    # -- one concrete+symbolic execution --------------------------------------------

    def _execute(self, assignment: Dict[str, int], trace: _Trace) -> None:
        vm = _NiceVM(self, assignment, trace)
        vm.run_module()

    def _fresh_symbol(self, seed: int, lo: int, hi: int, assignment: Dict[str, int]) -> SymInt:
        name = f"{self._ns}n{self._var_counter}"
        self._var_counter += 1
        sym = Sym(name, lo, hi)
        assignment.setdefault(name, min(max(seed, lo), hi))
        return SymInt(sym)


class _Budget(Exception):
    pass


class _NiceVM:
    """Minimal MiniPy bytecode evaluator with symbolic integer support."""

    def __init__(self, engine: DedicatedNiceEngine, assignment: Dict[str, int], trace: _Trace):
        self.engine = engine
        self.module = engine.module
        self.assignment = assignment
        self.trace = trace
        self.globals: List[object] = [None] * max(len(self.module.global_names), 1)
        self.instrs_left = engine.instr_budget
        self.output: List[int] = []
        for slot, (kind, value) in self.module.global_inits.items():
            if kind == "builtin":
                self.globals[slot] = _Builtin(value)
            elif kind == "exctype":
                raise UnsupportedFeature("exception types are not supported")

    # concrete view of a possibly-symbolic value
    def conc(self, v):
        if isinstance(v, SymInt):
            if isinstance(v.expr, Expr):
                env = dict(self.assignment)
                for var in v.expr.free_vars():
                    env.setdefault(var.name, var.lo)
                return evaluate(v.expr, env)
            return v.expr
        return v

    def truth(self, v, negated: bool = False) -> bool:
        if isinstance(v, SymInt):
            cond = truth_condition(v.expr) if isinstance(v.expr, Expr) else v.expr
            taken = self.conc(v) != 0
            if isinstance(cond, Expr):
                if negated and self.engine.legacy_not_bug:
                    # NICE's bug: records the un-negated condition with the
                    # post-negation outcome, picking wrong alternates.
                    self.trace.records.append((cond, not taken))
                else:
                    self.trace.records.append((cond, taken))
            return taken
        if isinstance(v, bool):
            return v
        if isinstance(v, int):
            return v != 0
        if isinstance(v, (str, list, dict)):
            return len(v) > 0
        return v is not None

    def run_module(self) -> None:
        main = self.module.codes[self.module.main_code]
        self._eval(main, [None])

    def _call(self, func, args):
        if isinstance(func, _Func):
            code = self.module.codes[func.code_id]
            if len(args) != code.argcount:
                raise UnsupportedFeature("arity errors are not modelled")
            frame = list(args) + [None] * (max(code.nlocals, 1) - len(args))
            return self._eval(code, frame)
        if isinstance(func, _Builtin):
            return self._builtin(func.builtin_id, args)
        raise UnsupportedFeature("calling a non-function value")

    def _builtin(self, bid: int, args):
        if bid == 1:  # len (concrete containers only)
            value = args[0]
            if isinstance(value, (str, list, dict)):
                return len(value)
            raise UnsupportedFeature("len() of symbolic value")
        if bid == 7:  # print
            self.output.append(self.conc(args[0]) if isinstance(args[0], SymInt) else 0)
            return None
        if bid == 9:  # sym_int(seed, lo, hi)
            seed = self.conc(args[0])
            lo = self.conc(args[1])
            hi = self.conc(args[2])
            return self.engine._fresh_symbol(seed, lo, hi, self.assignment)
        if bid == 8:  # sym_string: NICE has no symbolic strings (Table 4)
            raise UnsupportedFeature("symbolic strings are not supported")
        if bid == 6:  # range
            if len(args) == 1:
                return range(self.conc(args[0]))
            return range(self.conc(args[0]), self.conc(args[1]))
        if bid == 2:  # ord
            if isinstance(args[0], str) and len(args[0]) == 1:
                return ord(args[0])
            raise UnsupportedFeature("ord() of symbolic value")
        if bid == 3:  # chr
            return chr(self.conc(args[0]))
        if bid == 11:
            value = args[0]
            if isinstance(value, SymInt):
                raise UnsupportedFeature("abs() of symbolic value")
            return abs(value)
        if bid in (4, 5, 10, 12, 13):
            raise UnsupportedFeature(f"builtin {bid} is not supported")
        raise UnsupportedFeature(f"builtin {bid} is not supported")

    def _binary(self, op: int, a, b):
        if op in (BinOp.IN, BinOp.NOT_IN):
            if isinstance(a, SymInt) or isinstance(b, SymInt):
                if isinstance(b, dict):
                    # NICE models dict membership over symbolic keys by a
                    # disjunction of equalities, checked concretely per key.
                    hit = 0
                    for key in b:
                        if isinstance(key, (int, bool)):
                            eq = mk_binop("eq", _as_expr(a), int(key))
                            hit = mk_binop("lor", hit, eq)
                    result = SymInt(hit)
                    return result if op == BinOp.IN else SymInt(negate_condition(_as_expr(result)))
                raise UnsupportedFeature("symbolic membership on this container")
            contains = a in b if not isinstance(b, dict) else a in b
            return contains if op == BinOp.IN else not contains
        if isinstance(a, SymInt) or isinstance(b, SymInt):
            name = _BIN_TO_EXPR.get(op)
            if name is None:
                raise UnsupportedFeature(f"symbolic binary op {op}")
            return SymInt(mk_binop(name, _as_expr(a), _as_expr(b)))
        if isinstance(a, str) and isinstance(b, str):
            if op == BinOp.ADD:
                return a + b
            if op == BinOp.EQ:
                return a == b
            if op == BinOp.NE:
                return a != b
            raise UnsupportedFeature("string comparison beyond ==/!=")
        a_int = int(a) if isinstance(a, bool) else a
        b_int = int(b) if isinstance(b, bool) else b
        if op == BinOp.ADD:
            return a_int + b_int
        if op == BinOp.SUB:
            return a_int - b_int
        if op == BinOp.MUL:
            return a_int * b_int
        if op == BinOp.FLOORDIV:
            return a_int // b_int
        if op == BinOp.MOD:
            return a_int % b_int
        if op == BinOp.EQ:
            return a_int == b_int
        if op == BinOp.NE:
            return a_int != b_int
        if op == BinOp.LT:
            return a_int < b_int
        if op == BinOp.LE:
            return a_int <= b_int
        if op == BinOp.GT:
            return a_int > b_int
        if op == BinOp.GE:
            return a_int >= b_int
        raise UnsupportedFeature(f"binary op {op}")

    def _dict_key(self, key):
        if isinstance(key, SymInt):
            # Dict keys are concretised (NICE's wrapped dicts do the same).
            return self.conc(key)
        if isinstance(key, (bool, int, str)):
            return key
        raise UnsupportedFeature("unhashable dict key")

    def _eval(self, code: CodeObject, frame: List[object]):
        stack: List[object] = []
        ip = 0
        instrs = code.instrs
        consts = code.consts
        while True:
            if self.instrs_left <= 0:
                raise _Budget()
            self.instrs_left -= 1
            op, arg = instrs[ip]
            ip += 1
            if op == Op.LOAD_CONST:
                stack.append(consts[arg])
            elif op == Op.LOAD_LOCAL:
                stack.append(frame[arg])
            elif op == Op.STORE_LOCAL:
                frame[arg] = stack.pop()
            elif op == Op.LOAD_GLOBAL:
                stack.append(self.globals[arg])
            elif op == Op.STORE_GLOBAL:
                self.globals[arg] = stack.pop()
            elif op == Op.BINARY:
                b = stack.pop()
                a = stack.pop()
                stack.append(self._binary(arg, a, b))
            elif op == Op.UNARY:
                v = stack.pop()
                if arg == UnOp.NEG:
                    if isinstance(v, SymInt):
                        stack.append(SymInt(mk_binop("sub", 0, _as_expr(v))))
                    else:
                        stack.append(-v)
                else:
                    if isinstance(v, SymInt):
                        # "not" applied to a symbolic condition: evaluate it
                        # now, with the (possibly buggy) polarity handling.
                        stack.append(not self.truth(v, negated=True))
                    else:
                        stack.append(not self.truth(v))
            elif op == Op.JUMP:
                ip = arg
            elif op == Op.POP_JUMP_IF_FALSE:
                if not self.truth(stack.pop()):
                    ip = arg
            elif op == Op.POP_JUMP_IF_TRUE:
                if self.truth(stack.pop()):
                    ip = arg
            elif op == Op.CALL_FUNCTION:
                args = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                func = stack.pop()
                stack.append(self._call(func, args))
            elif op == Op.RETURN_VALUE:
                return stack.pop()
            elif op == Op.BUILD_LIST:
                items = stack[len(stack) - arg:]
                del stack[len(stack) - arg:]
                stack.append(list(items))
            elif op == Op.BUILD_DICT:
                pairs = stack[len(stack) - 2 * arg:]
                del stack[len(stack) - 2 * arg:]
                d: Dict = {}
                for k in range(arg):
                    d[self._dict_key(pairs[2 * k])] = pairs[2 * k + 1]
                stack.append(d)
            elif op == Op.BINARY_SUBSCR:
                index = stack.pop()
                obj = stack.pop()
                if isinstance(obj, dict):
                    stack.append(obj[self._dict_key(index)])
                elif isinstance(obj, (list, str)):
                    stack.append(obj[self.conc(index) if isinstance(index, SymInt) else index])
                else:
                    raise UnsupportedFeature("subscript on this value")
            elif op == Op.STORE_SUBSCR:
                index = stack.pop()
                obj = stack.pop()
                value = stack.pop()
                if isinstance(obj, dict):
                    obj[self._dict_key(index)] = value
                elif isinstance(obj, list):
                    obj[self.conc(index) if isinstance(index, SymInt) else index] = value
                else:
                    raise UnsupportedFeature("item assignment on this value")
            elif op == Op.GET_ITER:
                obj = stack.pop()
                if isinstance(obj, range):
                    stack.append(iter(list(obj)))
                elif isinstance(obj, (list, str)):
                    stack.append(iter(list(obj)))
                elif isinstance(obj, dict):
                    stack.append(iter(list(obj.keys())))
                else:
                    raise UnsupportedFeature("iteration over this value")
            elif op == Op.FOR_ITER:
                iterator = stack[-1]
                try:
                    stack.append(next(iterator))
                except StopIteration:
                    stack.pop()
                    ip = arg
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.POP:
                stack.pop()
            elif op == Op.MAKE_FUNCTION:
                stack.append(_Func(arg))
            elif op == Op.NOP:
                pass
            elif op in (Op.RAISE, Op.SETUP_EXCEPT, Op.POP_BLOCK, Op.LOAD_EXCTYPE, Op.EXC_MATCH):
                raise UnsupportedFeature("exception handling (advanced control flow)")
            elif op in (Op.LOAD_METHOD, Op.CALL_METHOD):
                raise UnsupportedFeature("native methods")
            elif op == Op.SLICE:
                raise UnsupportedFeature("slicing")
            else:
                raise UnsupportedFeature(f"opcode {op}")


def _as_expr(v):
    if isinstance(v, SymInt):
        return v.expr
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, int):
        return v
    raise UnsupportedFeature("cannot build an expression from this value")
