"""The GuestLanguage plugin protocol and registry.

A :class:`GuestLanguage` bundles everything the toolchain needs to know
about one guest language — the pieces that used to be scattered behind
``language == "minipy"`` string comparisons:

- an **engine factory** building the Chef-generated engine facade for a
  source text (``MiniPyEngine`` / ``MiniLuaEngine`` for the built-ins),
- a **host-VM factory** for replaying concrete inputs in the vanilla
  reference interpreter (differential testing, coverage),
- **driver codegen** for the Fig. 7 symbolic-test API: guest string
  literal quoting and ``sym_string`` / ``sym_int`` input declarations,
- **comment prefix** / LoC rules (Table 3 accounting).

Built-in languages register themselves from
``repro/interpreters/<lang>/language.py``; those modules are the only
place a language name may be special-cased.  Everything else goes
through :func:`get_language`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError


class UnknownLanguageError(ReproError):
    """No :class:`GuestLanguage` is registered under the given name."""


@dataclass(frozen=True)
class GuestLanguage:
    """One guest language, as the engine toolchain sees it."""

    #: registry key ("minipy", "minilua", ...).
    name: str
    #: line-comment prefix, used by LoC accounting (Table 3).
    comment_prefix: str
    #: ``engine_factory(source, config, solver)`` → engine facade
    #: exposing ``run() -> RunResult``, ``make_chef()``, ``replay(case)``,
    #: ``coverage(suite)`` and ``exception_name(type_id)``.
    engine_factory: Callable[..., Any]
    #: render a host string as a guest-language string literal.
    quote_literal: Callable[[str], str]
    #: ``host_vm_factory(module, symbolic_inputs)`` → vanilla host VM
    #: with ``run()``, for canonical replay outside the engine facade.
    host_vm_factory: Optional[Callable[..., Any]] = None
    #: human-oriented one-liner for docs and error messages.
    description: str = ""

    # -- engine construction -------------------------------------------------

    def create_engine(self, source: str, config=None, solver=None):
        """Build the Chef-generated symbolic execution engine."""
        return self.engine_factory(source, config, solver)

    def host_vm(self, module, symbolic_inputs):
        """Vanilla host VM over a compiled module (replay reference)."""
        if self.host_vm_factory is None:
            raise ReproError(
                f"guest language {self.name!r} has no host VM registered"
            )
        return self.host_vm_factory(module, symbolic_inputs)

    # -- symbolic-test driver codegen (Fig. 7) -------------------------------

    def declare_string(self, name: str, seed: str) -> str:
        """Driver statement declaring a symbolic string input."""
        return f"{name} = sym_string({self.quote_literal(seed)})"

    def declare_int(self, name: str, seed: int, lo: int, hi: int) -> str:
        """Driver statement declaring a symbolic integer input."""
        return f"{name} = sym_int({seed}, {lo}, {hi})"

    # -- source accounting ---------------------------------------------------

    def loc(self, source: str) -> int:
        """Non-blank, non-comment lines of guest source (cloc stand-in)."""
        from repro.symtest.coverage import count_loc

        return count_loc(source, comment_prefix=self.comment_prefix)


def escape_double_quoted(text: str) -> str:
    """Render ``text`` as a double-quoted literal with ``\\\\``/``\\"``
    escapes and ``\\xNN`` for non-printables — the escape set both
    built-in frontend lexers accept.  Language modules alias or wrap
    this so the escape rules live in one place."""
    chars = []
    for c in text:
        o = ord(c)
        if c == "\\":
            chars.append("\\\\")
        elif c == '"':
            chars.append('\\"')
        elif 32 <= o < 127:
            chars.append(c)
        else:
            chars.append(f"\\x{o:02x}")
    return '"' + "".join(chars) + '"'


_REGISTRY: Dict[str, GuestLanguage] = {}
_BUILTIN_MODULES = (
    "repro.interpreters.minipy.language",
    "repro.interpreters.minilua.language",
    "repro.interpreters.pylite.language",
)
_builtins_loaded = False


def register_language(language: GuestLanguage) -> GuestLanguage:
    """Add a language to the registry; returns it for chaining.

    Re-registering the same object is a no-op (module re-imports);
    registering a *different* object under a taken name is an error —
    shadowing a language silently would change engine behaviour at a
    distance.  Builtins are loaded first so that a conflicting name
    fails here, at the registration site, rather than poisoning every
    later lookup (a builtin module currently mid-import is already in
    ``sys.modules``, so the recursion terminates).
    """
    _load_builtins()
    existing = _REGISTRY.get(language.name)
    if existing is not None and existing != language:
        raise ReproError(f"guest language {language.name!r} is already registered")
    _REGISTRY[language.name] = language
    return language


def _load_builtins() -> None:
    # get_language() runs per symbolic-input declaration, so this must
    # be a single branch after the first load.
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def get_language(name) -> GuestLanguage:
    """Look up a registered language by name (or pass one through)."""
    if isinstance(name, GuestLanguage):
        return name
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(repr(n) for n in languages())
        raise UnknownLanguageError(
            f"unknown guest language {name!r}; registered languages: {known}"
        ) from None


def languages() -> List[str]:
    """Sorted names of every registered guest language."""
    _load_builtins()
    return sorted(_REGISTRY)
