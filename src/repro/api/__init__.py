"""repro.api — the stable public surface of the reproduction (v1).

Two abstractions make the engine a *library* rather than a pair of
hardcoded facades:

- :class:`GuestLanguage` (:mod:`repro.api.language`) — one object per
  guest language bundling everything that used to be string-dispatched
  on ``language == "minipy"``: the engine factory, host-VM replay,
  symbolic-test driver codegen (literal quoting, input declarations)
  and comment-prefix / LoC rules.  MiniPy and MiniLua register
  themselves (``repro/interpreters/*/language.py``); a third language
  is one :func:`register_language` call away.

- :class:`SymbolicSession` (:mod:`repro.api.session`, exported as
  ``Session``) — a streaming facade over one exploration:
  ``Session(language, source, config)`` exposes both a blocking
  :meth:`~repro.api.session.SymbolicSession.run` and an incremental
  :meth:`~repro.api.session.SymbolicSession.events` generator yielding
  the typed events of :mod:`repro.api.events` as exploration proceeds,
  at every worker count.

See the "Public API" section of ``docs/architecture.md``.
"""

from repro.api.events import (
    BatchMerged,
    BudgetExhausted,
    CheckpointSaved,
    MetricsUpdated,
    PathCompleted,
    RunFinished,
    SessionEvent,
    StateQuarantined,
    TestCaseFound,
)
from repro.api.language import (
    GuestLanguage,
    UnknownLanguageError,
    get_language,
    languages,
    register_language,
)

__all__ = [
    "BatchMerged",
    "BudgetExhausted",
    "CheckpointSaved",
    "GuestLanguage",
    "MetricsUpdated",
    "PathCompleted",
    "RunFinished",
    "Session",
    "SessionEvent",
    "StateQuarantined",
    "SymbolicSession",
    "TestCaseFound",
    "UnknownLanguageError",
    "get_language",
    "languages",
    "register_language",
]


def __getattr__(name: str):
    # Session pulls in the whole engine stack (chef -> lowlevel ->
    # solver); loading it lazily keeps ``repro.api.events`` importable
    # from inside that stack without a cycle.
    if name in ("Session", "SymbolicSession"):
        from repro.api.session import SymbolicSession

        return SymbolicSession
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
