"""Typed events streamed by a :class:`~repro.api.session.SymbolicSession`.

The event *set* of a run is scheduling-independent: the parallel
coordinator merges worker results in deterministic chunk order, so for
exhaustive runs the multiset of :class:`PathCompleted` /
:class:`TestCaseFound` events is identical at every worker count (event
*order* within a round is unspecified).  This module is deliberately
dependency-free so every layer of the engine can import it without
cycles; ``case``/``result`` fields are duck-typed
(:class:`repro.chef.testcase.TestCase` and
:class:`repro.chef.engine.RunResult` in practice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class SessionEvent:
    """Base class of every event yielded by ``Session.events()``."""


@dataclass(frozen=True)
class PathCompleted(SessionEvent):
    """One low-level path terminated and was recorded as a test case.

    Discarded terminal statuses (infeasible alternates, solver
    timeouts, deadline artifacts) never produce this event.
    """

    case: Any  # TestCase


@dataclass(frozen=True)
class TestCaseFound(SessionEvent):
    """The path was the first to exercise a new *high-level* path.

    Every ``TestCaseFound`` is paired with the :class:`PathCompleted`
    for the same :class:`~repro.chef.testcase.TestCase`; the set of
    these events is the high-level test suite.
    """

    __test__ = False  # pytest: not a test class despite the Test* name

    case: Any  # TestCase


@dataclass(frozen=True)
class BatchMerged(SessionEvent):
    """Parallel mode: one worker chunk was merged by the coordinator.

    Emitted once per (round, chunk) in deterministic chunk order;
    serial runs (``workers=1``) never emit it.
    """

    round_no: int
    chunk_index: int
    records: int
    pending: int


@dataclass(frozen=True)
class MetricsUpdated(SessionEvent):
    """Periodic metrics-registry snapshot (dotted-name → value dict).

    Serial runs emit one every ``sample_every`` completed paths;
    parallel runs emit one per merged round (pool-wide worker totals).
    Every stream emits a final one just before :class:`RunFinished`.
    Unlike the path events, these are *progress* telemetry: their count
    and payloads are timing/scheduling-dependent, so determinism
    comparisons must filter them out.
    """

    metrics: Any  # Dict[str, int | float | dict]


@dataclass(frozen=True)
class StateQuarantined(SessionEvent):
    """A pending state was quarantined after crashing workers repeatedly.

    Lost-chunk recovery requeues the states a dead worker held; a state
    that takes a worker down ``quarantine_threshold`` times is dropped
    from the frontier instead of killing the run, and its coordinates
    are surfaced here.  ``recovery.quarantined_states`` counts these.
    """

    #: high-level program counter of the state, if known (else -1).
    hlpc: int
    #: number of worker crashes blamed on this state.
    crashes: int


@dataclass(frozen=True)
class CheckpointSaved(SessionEvent):
    """A crash-consistent campaign checkpoint was written to disk.

    Emitted once per checkpoint cadence in parallel/serial runs with
    ``checkpoint_dir`` set; ``checkpoint.saves`` counts them.
    """

    path: str
    #: pending frontier states captured in the checkpoint.
    frontier: int
    #: completed test cases captured in the checkpoint.
    cases: int


@dataclass(frozen=True)
class BudgetExhausted(SessionEvent):
    """Exploration stopped because a budget ran out (not frontier drain).

    ``reason`` is ``"time"``, ``"ll-paths"`` or ``"hl-paths"``.
    """

    reason: str


@dataclass(frozen=True)
class RunFinished(SessionEvent):
    """Terminal event of every stream; carries the complete RunResult."""

    result: Any  # RunResult
