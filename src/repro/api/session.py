"""The SymbolicSession facade: one exploration, blocking or streaming.

A session ties together everything the five legacy entry points used to
re-plumb separately — language lookup, engine construction, config,
solver backend, worker count — behind one object::

    from repro import Session, ChefConfig, TestCaseFound

    session = Session("minipy", source, ChefConfig(strategy="cupa-path"))
    for event in session.events():
        if isinstance(event, TestCaseFound):
            print(event.case.inputs, event.case.exception_type)

``run()`` is the blocking twin; both drive the same Chef event stream,
so the test-case set is identical whichever you consume (and, for
exhaustive runs, identical at every worker count).  Pure-LVM programs —
e.g. Clay guests compiled with :func:`repro.clay.compile_program` — can
be explored with ``Session.from_program(program, config)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional

from repro.api.events import RunFinished, SessionEvent
from repro.api.language import GuestLanguage, get_language
from repro.chef.engine import Chef, RunResult
from repro.chef.options import ChefConfig
from repro.chef.testcase import TestCase
from repro.errors import ReproError
from repro.solver.backend import SolverBackend


class SymbolicSession:
    """One symbolic exploration of one guest program.

    A session explores exactly once: ``events()`` may be claimed once,
    ``run()`` consumes the stream internally and caches the result
    (repeat ``run()`` calls return the same :class:`RunResult`).
    """

    def __init__(
        self,
        language,
        source: str,
        config: Optional[ChefConfig] = None,
        *,
        solver: Optional[SolverBackend] = None,
        workers: Optional[int] = None,
        worker_pool=None,
        namespace: Optional[str] = None,
    ):
        self._init_common(config, workers, solver, worker_pool, namespace)
        self.language: Optional[GuestLanguage] = get_language(language)
        self.engine = self.language.create_engine(source, self.config, solver=solver)

    def _init_common(
        self, config, workers, solver, worker_pool=None, namespace=None, telemetry=None
    ) -> None:
        """State shared by every construction path; keep the alternate
        constructors delegating here so new fields appear everywhere."""
        self.config = config if config is not None else ChefConfig()
        if workers is not None:
            self.config = replace(self.config, workers=workers)
        self.language = None
        self.engine = None
        self._program = None
        self._solver = solver
        self._worker_pool = worker_pool
        #: optional pinned symbolic-variable namespace.  The default is a
        #: fresh process-unique prefix per engine; pinning it makes
        #: variable names — and therefore constraint fingerprints — a
        #: pure function of the program, which is what lets a persistent
        #: cache store (``ChefConfig.cache_store``) hit across runs.
        self._namespace = namespace
        #: optional externally-owned Telemetry context for program
        #: sessions — the service daemon hands each session a
        #: ``session-<id>`` lane so the Chrome-trace export shows one
        #: swimlane per tenant.
        self._telemetry = telemetry
        self._chef: Optional[Chef] = None
        self._result: Optional[RunResult] = None
        self._streaming = False
        self._failed = False

    @classmethod
    def from_program(
        cls,
        program,
        config: Optional[ChefConfig] = None,
        *,
        solver: Optional[SolverBackend] = None,
        workers: Optional[int] = None,
        worker_pool=None,
        namespace: Optional[str] = None,
        telemetry=None,
    ) -> "SymbolicSession":
        """Session over a finalized LIR :class:`Program` (no guest language).

        Engine-facade conveniences (``replay``, ``exception_name``) are
        unavailable; ``run()``/``events()`` work exactly as for a
        language session.  ``worker_pool`` optionally pins parallel
        exploration to a caller-owned
        :class:`~repro.parallel.pool.WorkerPool` (the caller closes it);
        by default runs lease the process-wide shared pool, which stays
        warm between sessions — see :meth:`close_worker_pools`.
        ``namespace`` pins the symbolic-variable namespace (the service
        daemon derives one from the program digest so persistent-cache
        fingerprints match across runs).
        """
        session = cls.__new__(cls)
        session._init_common(config, workers, solver, worker_pool, namespace, telemetry)
        session._program = program
        return session

    @classmethod
    def resume(
        cls,
        path: str,
        *,
        workers: Optional[int] = None,
        worker_pool=None,
        telemetry=None,
        **config_overrides,
    ) -> "SymbolicSession":
        """Session continuing an interrupted campaign from a checkpoint.

        ``path`` is a checkpoint directory (containing ``campaign.ckpt``)
        or the checkpoint file itself, as written by a run with
        ``ChefConfig.checkpoint_dir`` set.  The resumed stream re-emits
        the checkpointed path events first, then explores the persisted
        frontier — for exhaustive runs the total event multiset equals
        the uninterrupted run's.  ``config_overrides`` patch the
        persisted config (e.g. ``time_budget=30.0``).
        """
        import os

        from repro.chef.checkpoint import checkpoint_path

        if os.path.isdir(path):
            path = checkpoint_path(path)
        session = cls.__new__(cls)
        session._init_common(None, workers, None, worker_pool, None, telemetry)
        if workers is not None:
            config_overrides["workers"] = workers
        chef = Chef.from_checkpoint(
            path,
            telemetry=telemetry,
            worker_pool=worker_pool,
            **config_overrides,
        )
        session._chef = chef
        session.config = chef.config
        session._program = chef.ll.program
        return session

    @classmethod
    def for_engine(
        cls,
        engine,
        config: Optional[ChefConfig] = None,
        *,
        language=None,
        workers: Optional[int] = None,
    ) -> "SymbolicSession":
        """Session over an already-built engine facade.

        Skips source recompilation — the way to explore the same
        compiled guest again (a session explores exactly once).  The
        engine's own solver is used; ``config`` defaults to the
        engine's and the engine is re-pointed at the session's config
        (its ``make_chef`` reads it); ``language`` is optional metadata.
        """
        session = cls.__new__(cls)
        session._init_common(
            config if config is not None else engine.config, workers, None
        )
        session.language = get_language(language) if language is not None else None
        session.engine = engine
        engine.config = session.config
        return session

    def _chef_instance(self) -> Chef:
        """Build the Chef loop on first use (engines build a fresh LIR
        program per Chef, so construction stays cheap until exploration
        actually starts)."""
        if self._chef is None:
            if self.engine is not None:
                self._chef = self.engine.make_chef()
            else:
                self._chef = Chef(
                    self._program,
                    self.config,
                    solver=self._solver,
                    telemetry=self._telemetry,
                )
            if self._worker_pool is not None:
                self._chef.worker_pool = self._worker_pool
            if self._namespace is not None:
                self._chef.ll.namespace = self._namespace
        return self._chef

    # -- exploration ----------------------------------------------------------

    def events(self) -> Iterator[SessionEvent]:
        """Claim the event stream (once) and explore incrementally.

        Yields :mod:`repro.api.events` instances as exploration
        proceeds, ending with :class:`RunFinished`.  A second call —
        whether or not the first generator was exhausted — raises
        :class:`ReproError`: a session explores exactly once.
        """
        if self._failed:
            raise ReproError(
                "a previous exploration of this session raised; its engine "
                "state is unreliable — create a new session to re-run"
            )
        if self._streaming:
            raise ReproError(
                "session events() already claimed; a SymbolicSession "
                "explores exactly once — create a new session to re-run"
            )
        self._streaming = True
        return self._stream()

    def _stream(self) -> Iterator[SessionEvent]:
        # A raise mid-exploration (solver error, KeyboardInterrupt)
        # leaves the Chef loop half-mutated: poison the session so
        # retries get an accurate error instead of "already claimed".
        # GeneratorExit (consumer abandoned the stream) takes the same
        # poison path: the run is half-explored either way.
        inner = self._chef_instance().stream()
        try:
            for event in inner:
                if isinstance(event, RunFinished):
                    self._result = event.result
                yield event
        except BaseException:
            self._failed = True
            raise
        finally:
            # Unwind the Chef loop *now*, not at GC time: closing the
            # inner generator runs its finally/with blocks, so a
            # parallel run releases its worker-pool lease and flushes
            # its persistent cache store the moment the consumer walks
            # away — the shared pool is immediately re-acquirable.
            inner.close()

    def run(self) -> RunResult:
        """Explore to completion (blocking) and return the RunResult."""
        if self._result is None:
            for _event in self.events():
                pass
        assert self._result is not None
        return self._result

    async def aevents(self, max_buffer: int = 256):
        """Async twin of :meth:`events` for event-loop consumers.

        The blocking Chef loop runs in a pump thread; events cross into
        the loop through a bounded queue (``max_buffer`` is the
        backpressure limit — a slow consumer stalls exploration instead
        of buffering it unboundedly).  Exceptions from the exploration
        re-raise at the ``async for`` site; abandoning the iterator
        (``aclose``, task cancellation) stops the pump and closes the
        underlying stream, so the worker-pool lease and persistent
        store unwind exactly as in :meth:`events`.
        """
        import asyncio
        import threading
        from concurrent.futures import TimeoutError as _FutureTimeout

        gen = self.events()  # claim now so double-claim raises here, not later
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue" = asyncio.Queue(max_buffer)
        stop = threading.Event()
        done = object()

        def ship(item) -> bool:
            """Put ``item`` on the loop-side queue; False once abandoned."""
            try:
                future = asyncio.run_coroutine_threadsafe(queue.put(item), loop)
            except RuntimeError:  # loop already closed
                return False
            while True:
                try:
                    future.result(timeout=0.1)
                    return True
                except _FutureTimeout:
                    if stop.is_set():
                        future.cancel()
                        return False
                except BaseException:  # cancelled, loop torn down
                    return False

        def pump() -> None:
            try:
                for event in gen:
                    if not ship(event) or stop.is_set():
                        return
                ship(done)
            except BaseException as exc:
                ship(exc)
            finally:
                gen.close()

        thread = threading.Thread(target=pump, name="session-events", daemon=True)
        thread.start()
        try:
            while True:
                item = await queue.get()
                if item is done:
                    return
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            stop.set()
            # Drain so a pump blocked on the full queue observes stop.
            while thread.is_alive():
                while True:
                    try:
                        queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                await asyncio.sleep(0.01)

    @property
    def result(self) -> Optional[RunResult]:
        """The finished RunResult, or None while still exploring."""
        return self._result

    @property
    def started(self) -> bool:
        """True once the event stream has been claimed (by events/run)."""
        return self._streaming

    @staticmethod
    def close_worker_pools() -> None:
        """Close the process-wide shared worker pools.

        Parallel runs lease persistent worker pools that stay warm
        between sessions (that reuse is the point — spawn once, run
        many).  They are closed automatically at interpreter exit; call
        this to reclaim the processes earlier.  Caller-owned pools
        passed via ``worker_pool=`` are not touched.
        """
        from repro.parallel.pool import close_shared_pools

        close_shared_pools()

    # -- observability ---------------------------------------------------------

    @property
    def telemetry(self):
        """The engine-wide :class:`~repro.obs.telemetry.Telemetry` context.

        Builds the Chef loop on first access (like exploration does);
        enable tracing via ``ChefConfig(trace=True)`` before starting.
        """
        return self._chef_instance().telemetry

    def metrics(self):
        """Merged metrics snapshot (dotted-name → value) for this session.

        After ``run()`` this is the same registry the ``RunResult``
        stat dicts are views of — one registry, serial or parallel.
        """
        return self.telemetry.metrics()

    def write_chrome_trace(self, path) -> None:
        """Export recorded spans as a Chrome/Perfetto trace JSON file.

        Requires ``ChefConfig(trace=True)``; with tracing off the file
        is written but contains only metadata (no span events).
        """
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, self.telemetry)

    # -- engine-facade conveniences -------------------------------------------

    def replay(self, case: TestCase):
        """Re-execute a generated test in the vanilla host VM."""
        return self._require_engine().replay(case)

    def exception_name(self, type_id: int) -> str:
        return self._require_engine().exception_name(type_id)

    def coverage(self, suite, replay_all: bool = False):
        return self._require_engine().coverage(suite, replay_all=replay_all)

    def _require_engine(self):
        if self.engine is None:
            raise ReproError(
                "this session was built from a raw LIR program; replay and "
                "coverage need a guest-language engine (use Session(language, "
                "source, ...))"
            )
        return self.engine


#: Public alias — ``Session(language, source, config)`` reads better at
#: call sites; ``SymbolicSession`` is the documented class name.
Session = SymbolicSession
