"""Wire protocol of the symbolic-execution service: JSON lines.

Every message — request, streamed event, terminal reply — is one JSON
object per ``\\n``-terminated UTF-8 line.  Requests carry an ``op``
(``run`` / ``ping`` / ``stats`` / ``shutdown``); a ``run`` streams the
session's typed :mod:`repro.api.events` taxonomy back as wire events
(``{"event": "<ClassName>", ...payload}``) and always ends the stream
with a terminal line: the ``RunFinished`` event on success, or
``{"error": "..."}``.

The encoding is lossy on purpose: ``TestCase.path_constraints`` (interned
expression graphs) and the full per-case list inside ``RunFinished`` stay
server-side — cases already crossed the wire one ``PathCompleted`` at a
time, so the result carries totals only.  What does cross is everything
the determinism contract is stated over: inputs, status, output,
signature — a client can compare a daemon session's path-event multiset
against an in-process run's exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

from repro.api.events import (
    BatchMerged,
    BudgetExhausted,
    MetricsUpdated,
    PathCompleted,
    RunFinished,
    SessionEvent,
    TestCaseFound,
)

__all__ = [
    "case_to_wire",
    "encode_line",
    "event_to_wire",
    "path_event_key",
    "path_event_multiset",
    "read_message",
    "result_to_wire",
    "write_message",
]


def case_to_wire(case) -> Dict[str, Any]:
    """JSON-safe view of a :class:`~repro.chef.testcase.TestCase`."""
    return {
        "test_id": case.test_id,
        "inputs": {name: list(values) for name, values in case.inputs.items()},
        "status": case.status,
        "hl_path_signature": case.hl_path_signature,
        "new_hl_path": case.new_hl_path,
        "exception_type": case.exception_type,
        "hang": case.hang,
        "interpreter_crash": case.interpreter_crash,
        "output": list(case.output),
        "hl_instr_count": case.hl_instr_count,
        "ll_instr_count": case.ll_instr_count,
        "wall_time": case.wall_time,
    }


def result_to_wire(result) -> Dict[str, Any]:
    """JSON-safe totals of a :class:`~repro.chef.engine.RunResult`."""
    return {
        "hl_paths": result.hl_paths,
        "ll_paths": result.ll_paths,
        "duration": result.duration,
        "cases": len(result.suite.cases),
        "cfg_nodes": result.cfg_nodes,
        "cfg_edges": result.cfg_edges,
        "tree_nodes": result.tree_nodes,
        "pending_left": result.pending_left,
        "states_created": result.states_created,
        "engine_stats": dict(result.engine_stats),
        "solver_stats": dict(result.solver_stats),
        "tags": dict(result.tags or {}),
    }


def event_to_wire(event: SessionEvent) -> Dict[str, Any]:
    """Encode one typed session event as a wire dict."""
    if isinstance(event, (PathCompleted, TestCaseFound)):
        return {"event": type(event).__name__, "case": case_to_wire(event.case)}
    if isinstance(event, BatchMerged):
        return {
            "event": "BatchMerged",
            "round_no": event.round_no,
            "chunk_index": event.chunk_index,
            "records": event.records,
            "pending": event.pending,
        }
    if isinstance(event, MetricsUpdated):
        return {"event": "MetricsUpdated", "metrics": event.metrics}
    if isinstance(event, BudgetExhausted):
        return {"event": "BudgetExhausted", "reason": event.reason}
    if isinstance(event, RunFinished):
        return {"event": "RunFinished", "result": result_to_wire(event.result)}
    return {"event": type(event).__name__}


def path_event_key(wire_event: Dict[str, Any]):
    """Comparison key of a wire path event, or None for progress events.

    The multiset of these keys is the determinism contract: identical
    between a daemon session and an in-process ``Session.run()`` of the
    same exhaustive exploration (progress events — metrics, batch
    markers — are timing-dependent and excluded).
    """
    if wire_event.get("event") not in ("PathCompleted", "TestCaseFound"):
        return None
    case = wire_event["case"]
    inputs = tuple(
        (name, tuple(values)) for name, values in sorted(case["inputs"].items())
    )
    return (wire_event["event"], inputs, case["status"], tuple(case["output"]))


def path_event_multiset(wire_events: Iterable[Dict[str, Any]]) -> Dict:
    """Multiset (key → count) over :func:`path_event_key` of a stream."""
    counts: Dict = {}
    for wire_event in wire_events:
        key = path_event_key(wire_event)
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    return counts


# -- line framing --------------------------------------------------------------


def write_message(fh, message: Dict[str, Any]) -> None:
    """Write one message as a JSON line to a binary file-like object."""
    fh.write(encode_line(message))
    fh.flush()


def encode_line(message: Dict[str, Any]) -> bytes:
    # default=str: metrics snapshots may carry non-JSON scalar types
    # (e.g. histogram views); a lossy string beats a dead stream.
    return (json.dumps(message, default=str) + "\n").encode("utf-8")


def read_message(fh) -> Optional[Dict[str, Any]]:
    """Read one JSON line; None on a cleanly closed stream."""
    line = fh.readline()
    if not line:
        return None
    return json.loads(line.decode("utf-8"))
