"""CLI for the symbolic-execution service: ``python -m repro.service``.

Subcommands::

    serve     start the daemon on a Unix socket
    run       submit one session and stream its events as JSON lines
    resume    continue a checkpointed campaign (daemon-local checkpoint)
    stats     print service metrics + shared-pool counters
    ping      liveness check
    shutdown  stop the daemon

Example::

    python -m repro.service serve --socket /tmp/repro.sock --workers 2 &
    python -m repro.service run --socket /tmp/repro.sock \\
        --language minipy --file target.py --time-budget 5
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.api.language import languages
from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ChefService, ServiceConfig


def _language_help() -> str:
    """Registry-derived help text: new languages show up automatically."""
    return "registered guest language name (one of: %s)" % ", ".join(languages())


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="symbolic-execution service daemon and client",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="start the daemon")
    serve.add_argument("--socket", required=True, help="Unix socket path")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--max-sessions", type=int, default=8)
    serve.add_argument("--max-time-budget", type=float, default=60.0)
    serve.add_argument("--max-ll-paths", type=int, default=10_000)
    serve.add_argument("--cache-dir", default=None,
                       help="persistent model-cache store directory")
    serve.add_argument("--max-solver-deadline", type=float, default=None,
                       help="per-query solver deadline ceiling, seconds "
                            "(wedged queries degrade to unknown)")
    serve.add_argument("--trace", action="store_true",
                       help="record per-session Chrome-trace lanes")

    run = sub.add_parser("run", help="submit one session, stream events")
    run.add_argument("--socket", required=True)
    target = run.add_mutually_exclusive_group(required=True)
    target.add_argument("--clay-file", help="Clay guest source file")
    target.add_argument("--file", help="guest source file (with --language)")
    target.add_argument("--source", help="inline guest source (with --language)")
    run.add_argument("--language", help=_language_help())
    run.add_argument("--strategy", default=None)
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--time-budget", type=float, default=None)
    run.add_argument("--max-ll-paths", type=int, default=None)
    run.add_argument("--max-hl-paths", type=int, default=None)
    run.add_argument("--solver-deadline", type=float, default=None,
                     help="per-query solver deadline, seconds")
    run.add_argument("--checkpoint-dir", default=None,
                     help="daemon-local checkpoint directory for this run")
    run.add_argument("--quiet", action="store_true",
                     help="print only the final RunFinished result")

    resume = sub.add_parser(
        "resume", help="continue a checkpointed campaign, stream events"
    )
    resume.add_argument("--socket", required=True)
    resume.add_argument("--checkpoint", required=True,
                        help="daemon-local checkpoint directory or file")
    resume.add_argument("--time-budget", type=float, default=None)
    resume.add_argument("--max-ll-paths", type=int, default=None)
    resume.add_argument("--quiet", action="store_true",
                        help="print only the final RunFinished result")

    for name, help_text in (
        ("stats", "print service metrics"),
        ("ping", "liveness check"),
        ("shutdown", "stop the daemon"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--socket", required=True)
    for streaming in (run, resume):
        streaming.add_argument(
            "--retries", type=int, default=0,
            help="transient-failure retries with exponential backoff",
        )
        streaming.add_argument(
            "--timeout", type=float, default=300.0,
            help="per-socket-operation timeout, seconds",
        )
    return parser


def _cmd_serve(args) -> int:
    service = ChefService(
        ServiceConfig(
            socket_path=args.socket,
            workers=args.workers,
            max_sessions=args.max_sessions,
            max_time_budget=args.max_time_budget,
            max_ll_paths=args.max_ll_paths,
            cache_dir=args.cache_dir,
            max_solver_deadline_s=args.max_solver_deadline,
            trace=args.trace,
        )
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    return 0


def _streaming_client(args) -> ServiceClient:
    return ServiceClient(args.socket, timeout=args.timeout, retries=args.retries)


def _print_stream(args, client: ServiceClient, **kwargs) -> int:
    for event in client.run_events(**kwargs):
        if not args.quiet or event.get("event") == "RunFinished":
            json.dump(event, sys.stdout)
            sys.stdout.write("\n")
    return 0


def _cmd_run(args) -> int:
    config = {}
    for field_name in ("strategy", "seed", "time_budget", "max_ll_paths", "max_hl_paths"):
        value = getattr(args, field_name)
        if value is not None:
            config[field_name] = value
    if args.solver_deadline is not None:
        config["solver_deadline_s"] = args.solver_deadline
    if args.checkpoint_dir is not None:
        config["checkpoint_dir"] = args.checkpoint_dir
    kwargs = {"config": config}
    if args.clay_file:
        with open(args.clay_file, "r", encoding="utf-8") as fh:
            kwargs["clay"] = fh.read()
    else:
        if not args.language:
            print("--language is required with --file/--source", file=sys.stderr)
            return 2
        kwargs["language"] = args.language
        if args.file:
            with open(args.file, "r", encoding="utf-8") as fh:
                kwargs["source"] = fh.read()
        else:
            kwargs["source"] = args.source
    return _print_stream(args, _streaming_client(args), **kwargs)


def _cmd_resume(args) -> int:
    config = {}
    for field_name in ("time_budget", "max_ll_paths"):
        value = getattr(args, field_name)
        if value is not None:
            config[field_name] = value
    return _print_stream(
        args, _streaming_client(args), resume=args.checkpoint, config=config
    )


def main(argv: Optional[list] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "resume":
            return _cmd_resume(args)
        client = ServiceClient(args.socket)
        reply = getattr(client, args.command)()
        json.dump(reply, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
        return 0
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
