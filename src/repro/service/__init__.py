"""Symbolic execution as a service (ROADMAP's engine-as-a-daemon step).

The paper's argument — symbolic execution for interpreted languages
should be cheap to stand up — extends past engine-as-a-library to a
long-lived multi-tenant daemon: :class:`ChefService` multiplexes many
concurrent sessions over one shared persistent worker pool with
round-robin fair scheduling, per-session budget clamps, and a
disk-backed model-cache store whose verdicts carry across runs and
tenants.  :class:`ServiceClient` is the thin blocking client;
``python -m repro.service`` is the CLI (serve / run / stats / ping /
shutdown); :mod:`repro.service.protocol` defines the JSON-lines wire
format.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import ChefService, ServiceConfig

__all__ = ["ChefService", "ServiceClient", "ServiceConfig", "ServiceError"]
