"""Thin blocking client for the symbolic-execution service daemon.

One request per connection: the client opens the daemon's Unix socket,
writes one JSON request line, and reads JSON reply lines until the
operation's terminal message (see :mod:`repro.service.protocol`).
``run_events`` is a generator — events stream as the daemon produces
them, and abandoning the generator closes the socket, which the daemon
observes as a hung-up client and unwinds the session cleanly.
"""

from __future__ import annotations

import socket
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The daemon reported an error (or the connection died mid-op)."""


class ServiceClient:
    """Blocking JSON-lines client over the daemon's Unix socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = 300.0):
        self.socket_path = socket_path
        self.timeout = timeout

    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def _simple(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One-shot op: send the request, return the single reply line."""
        with self._connect() as sock:
            with sock.makefile("rwb") as fh:
                protocol.write_message(fh, request)
                reply = protocol.read_message(fh)
        if reply is None:
            raise ServiceError("daemon closed the connection without replying")
        if "error" in reply:
            raise ServiceError(reply["error"])
        return reply

    # -- control ops -----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._simple({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Service metrics + shared-pool counters (see daemon ``_stats``)."""
        return self._simple({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self._simple({"op": "shutdown"})

    # -- sessions --------------------------------------------------------------

    def run_events(
        self,
        *,
        clay: Optional[str] = None,
        language: Optional[str] = None,
        source: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream one session's wire events (ends with ``RunFinished``).

        ``config`` holds the budget/strategy fields of the run request
        (a :class:`~repro.chef.options.ChefConfig`-shaped dict is
        accepted); the daemon clamps budgets and owns worker count.
        """
        if is_dataclass(config):
            config = asdict(config)
        request: Dict[str, Any] = {"op": "run", "config": config or {}}
        if clay is not None:
            request["clay"] = clay
        else:
            request["language"] = language
            request["source"] = source
        with self._connect() as sock:
            with sock.makefile("rwb") as fh:
                protocol.write_message(fh, request)
                while True:
                    message = protocol.read_message(fh)
                    if message is None:
                        raise ServiceError(
                            "daemon closed the stream before RunFinished"
                        )
                    if "error" in message:
                        raise ServiceError(message["error"])
                    yield message
                    if message.get("event") == "RunFinished":
                        return

    def run(self, **kwargs) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Run to completion; ``(all wire events, RunFinished result)``."""
        events = list(self.run_events(**kwargs))
        return events, events[-1]["result"]
