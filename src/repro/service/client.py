"""Thin blocking client for the symbolic-execution service daemon.

One request per connection: the client opens the daemon's Unix socket,
writes one JSON request line, and reads JSON reply lines until the
operation's terminal message (see :mod:`repro.service.protocol`).
``run_events`` is a generator — events stream as the daemon produces
them, and abandoning the generator closes the socket, which the daemon
observes as a hung-up client and unwinds the session cleanly.

Transient failures (daemon not yet listening, connection refused or
reset before any reply) are retried with exponential backoff + jitter
up to ``retries`` times within an overall ``deadline``; a stream that
already yielded events is never replayed — retrying a half-run session
would duplicate path events.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]

#: errors worth retrying: the daemon is starting up, restarting, or a
#: chaos test dropped the connection before any reply crossed.
_RETRYABLE = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    FileNotFoundError,
    socket.timeout,
)


class ServiceError(ReproError):
    """The daemon reported an error (or the connection died mid-op)."""


class ServiceClient:
    """Blocking JSON-lines client over the daemon's Unix socket."""

    def __init__(
        self,
        socket_path: str,
        timeout: Optional[float] = 300.0,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        backoff_max: float = 2.0,
        deadline: Optional[float] = None,
    ):
        self.socket_path = socket_path
        #: per-socket-operation timeout, seconds.
        self.timeout = timeout
        #: retry attempts after the first failure (0 = fail fast).
        self.retries = max(0, retries)
        #: base backoff, doubled per attempt with ±50% jitter.
        self.backoff = backoff
        self.backoff_max = backoff_max
        #: overall wall-clock budget across all attempts of one op.
        self.deadline = deadline

    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        return sock

    def _attempts(self):
        """Yield (attempt_index, give_up) pairs, sleeping between tries."""
        deadline_at = (
            time.monotonic() + self.deadline if self.deadline is not None else None
        )
        for attempt in range(self.retries + 1):
            last = attempt == self.retries
            if deadline_at is not None and time.monotonic() >= deadline_at:
                last = True
            yield attempt, last
            # Reaching here means the attempt failed and will be retried.
            pause = min(self.backoff * (2 ** attempt), self.backoff_max)
            pause *= 0.5 + random.random()  # full jitter, 0.5x..1.5x
            if deadline_at is not None:
                pause = min(pause, max(deadline_at - time.monotonic(), 0.0))
            if pause > 0:
                time.sleep(pause)

    def _connect_retry(self):
        """Connect with backoff; raises the last error when out of tries."""
        for _attempt, give_up in self._attempts():
            try:
                return self._connect()
            except _RETRYABLE:
                if give_up:
                    raise
        raise ServiceError("retry budget exhausted")  # not reachable

    def _simple(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """One-shot op: send the request, return the single reply line.

        The whole request/reply exchange retries — these ops are
        idempotent (ping/stats report, shutdown converges).
        """
        reply = None
        for _attempt, give_up in self._attempts():
            try:
                with self._connect() as sock:
                    with sock.makefile("rwb") as fh:
                        protocol.write_message(fh, request)
                        reply = protocol.read_message(fh)
            except _RETRYABLE:
                if give_up:
                    raise
                continue
            if reply is not None:
                break
            if give_up:
                break
        if reply is None:
            raise ServiceError("daemon closed the connection without replying")
        if "error" in reply:
            raise ServiceError(reply["error"])
        return reply

    # -- control ops -----------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self._simple({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Service metrics + shared-pool counters (see daemon ``_stats``)."""
        return self._simple({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        return self._simple({"op": "shutdown"})

    # -- sessions --------------------------------------------------------------

    def run_events(
        self,
        *,
        clay: Optional[str] = None,
        language: Optional[str] = None,
        source: Optional[str] = None,
        config: Optional[Dict[str, Any]] = None,
        resume: Optional[str] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream one session's wire events (ends with ``RunFinished``).

        ``config`` holds the budget/strategy fields of the run request
        (a :class:`~repro.chef.options.ChefConfig`-shaped dict is
        accepted); the daemon clamps budgets and owns worker count.
        ``resume`` names a daemon-local checkpoint directory/file to
        continue instead of a fresh target.  Connection setup retries
        with backoff; a stream is only re-submitted whole if it died
        before its *first* event arrived.
        """
        if is_dataclass(config):
            config = asdict(config)
        request: Dict[str, Any] = {"op": "run", "config": config or {}}
        if resume is not None:
            request["resume"] = resume
        elif clay is not None:
            request["clay"] = clay
        else:
            request["language"] = language
            request["source"] = source
        for _attempt, give_up in self._attempts():
            streamed = 0
            try:
                with self._connect() as sock:
                    with sock.makefile("rwb") as fh:
                        protocol.write_message(fh, request)
                        while True:
                            message = protocol.read_message(fh)
                            if message is None:
                                # Dropped before RunFinished.  Retry only
                                # if nothing streamed yet — replaying a
                                # half-run would duplicate path events.
                                if streamed or give_up:
                                    raise ServiceError(
                                        "daemon closed the stream before "
                                        "RunFinished"
                                    )
                                break
                            if "error" in message:
                                raise ServiceError(message["error"])
                            streamed += 1
                            yield message
                            if message.get("event") == "RunFinished":
                                return
            except _RETRYABLE:
                if streamed or give_up:
                    raise
        raise ServiceError("retry budget exhausted before the stream started")

    def run(self, **kwargs) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Run to completion; ``(all wire events, RunFinished result)``."""
        events = list(self.run_events(**kwargs))
        return events, events[-1]["result"]
