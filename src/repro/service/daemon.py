"""Symbolic execution as a service: the asyncio session daemon.

:class:`ChefService` accepts many concurrent symbolic-execution
sessions over one local (Unix-domain) socket and multiplexes them over
**one** process-wide persistent :class:`~repro.parallel.pool.WorkerPool`:
every session's parallel explorer leases the pool per *round* in FIFO
order, so N concurrent tenants interleave rounds round-robin over warm
workers — the Program image of each distinct target ships once per pool,
not once per session (the ``program_ships`` invariant the pool tests
gate).

Per-session budgets are clamped against the service caps
(:class:`ServiceConfig`), admission is bounded by a semaphore, and the
typed :mod:`repro.api.events` stream crosses the socket as JSON lines
(see :mod:`repro.service.protocol`).

Cross-tenant cache reuse: with ``cache_dir`` set, every distinct target
gets a disk-backed :class:`~repro.solver.cache.PersistentCacheStore`
keyed by its content digest, and the session's symbolic-variable
namespace is *derived from that digest* — variable names, and therefore
constraint fingerprints, become a pure function of the target, so a
warm second run (same tenant or another) re-keys nothing and
subset-UNSAT/superset-SAT verdicts hit across runs
(``service.cache.cross_run_hits``).

Observability: one service-wide telemetry context (``service.*``
counters, sessions/sec gauge) plus a Chrome-trace lane per session
(``session-<id>``) folded into the service event log when the session
ends — ``write_chrome_trace`` shows tenants as swimlanes next to the
coordinator and worker lanes.
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from repro.api.session import SymbolicSession
from repro.chef.options import ChefConfig
from repro.obs.telemetry import Telemetry
from repro.service import protocol

__all__ = ["ChefService", "ServiceConfig"]


@dataclass
class ServiceConfig:
    """Operating limits of one daemon instance."""

    #: Unix-domain socket path the daemon listens on.
    socket_path: str
    #: worker processes in the one shared pool (1 = serial sessions,
    #: which still share the process-wide in-memory model cache but not
    #: the round-robin pool scheduling).
    workers: int = 2
    #: sessions allowed to *run* concurrently; excess requests queue
    #: FIFO on the admission semaphore.
    max_sessions: int = 8
    #: per-session wall-clock budget ceiling (requests are clamped).
    max_time_budget: float = 60.0
    #: per-session low-level path ceiling; also the default for
    #: requests that ask for unlimited paths (0) — a service never
    #: grants unbounded exploration.
    max_ll_paths: int = 10_000
    #: directory of per-target persistent cache stores (None = off).
    cache_dir: Optional[str] = None
    #: record tracing spans (per-session Chrome-trace lanes).
    trace: bool = False
    #: ceiling for per-session solver query deadlines, seconds.  When
    #: set, every session runs with a deadline of at most this (requests
    #: may ask for a shorter one); wedged queries degrade to *unknown*
    #: instead of stalling the shared pool (``solver.deadline_unknowns``).
    max_solver_deadline_s: Optional[float] = None
    #: deterministic fault-injection plan for chaos tests (connection
    #: drops fire in :meth:`ChefService._handle`); None in production.
    fault_plan: Optional[object] = None


class ChefService:
    """The daemon: admission, budgets, fair scheduling, cache reuse."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.telemetry = Telemetry(enabled=config.trace, lane="service")
        self.registry = self.telemetry.registry
        self._sid_counter = itertools.count(1)
        self._start_time = time.monotonic()
        self._stop: Optional[asyncio.Event] = None
        self._admission: Optional[asyncio.Semaphore] = None
        from repro.faults import make_injector

        self._faults = make_injector(config.fault_plan)
        self._connections = 0
        if config.cache_dir:
            os.makedirs(config.cache_dir, exist_ok=True)

    # -- lifecycle -------------------------------------------------------------

    async def serve(self) -> None:
        """Listen until a ``shutdown`` request arrives."""
        self._stop = asyncio.Event()
        self._admission = asyncio.Semaphore(self.config.max_sessions)
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)
        server = await asyncio.start_unix_server(
            self._handle, path=self.config.socket_path
        )
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)

    def serve_forever(self) -> None:
        """Blocking wrapper around :meth:`serve` (its own event loop)."""
        asyncio.run(self.serve())

    # -- connection handling ---------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        self._connections += 1
        if self._faults is not None and self._faults.should_drop_connection(
            self._connections
        ):
            # Chaos test: hang up without a reply — clients must retry.
            self.registry.counter("service.connections_dropped").inc()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass
            return
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                request = json.loads(line)
            except ValueError as exc:
                await self._send(writer, {"error": f"bad request: {exc}"})
                return
            op = request.get("op")
            if op == "ping":
                await self._send(writer, {"ok": True, "op": "ping", "pid": os.getpid()})
            elif op == "stats":
                await self._send(writer, self._stats())
            elif op == "shutdown":
                await self._send(writer, {"ok": True, "op": "shutdown"})
                self._stop.set()
            elif op == "run":
                await self._run_session(request, writer)
            else:
                await self._send(writer, {"error": f"unknown op: {op!r}"})
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away; the session unwinds via aevents' finally
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _send(self, writer, message: Dict[str, Any]) -> None:
        writer.write(protocol.encode_line(message))
        await writer.drain()

    # -- sessions --------------------------------------------------------------

    async def _run_session(self, request: Dict[str, Any], writer) -> None:
        sid = next(self._sid_counter)
        session_tele = Telemetry(enabled=self.config.trace, lane=f"session-{sid}")
        try:
            session = self._build_session(request, session_tele)
        except Exception as exc:
            self.registry.counter("service.sessions.rejected").inc()
            await self._send(writer, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self.registry.gauge("service.sessions.waiting").value += 1
        await self._admission.acquire()
        self.registry.gauge("service.sessions.waiting").value -= 1
        self.registry.counter("service.sessions.started").inc()
        self.registry.gauge("service.sessions.active").value += 1
        events_counter = self.registry.counter("service.events_streamed")
        started = time.monotonic()
        terminal: Optional[Dict[str, Any]] = None
        try:
            with self.telemetry.span("service.session", sid=sid):
                stream = session.aevents()
                try:
                    async for event in stream:
                        wire = protocol.event_to_wire(event)
                        if wire.get("event") == "RunFinished":
                            # Held back until the session is folded, so
                            # a client that has seen the terminal line
                            # observes consistent service counters.
                            terminal = wire
                            break
                        await self._send(writer, wire)
                        events_counter.inc()
                finally:
                    await stream.aclose()
            if terminal is not None:
                self.registry.counter("service.sessions.finished").inc()
        except (ConnectionResetError, BrokenPipeError):
            # Client hung up mid-stream: aevents' finally already closed
            # the underlying stream (released pool lease, flushed store).
            self.registry.counter("service.sessions.abandoned").inc()
        except Exception as exc:
            self.registry.counter("service.sessions.failed").inc()
            try:
                await self._send(writer, {"error": f"{type(exc).__name__}: {exc}"})
            except Exception:
                pass
        finally:
            self._admission.release()
            self.registry.gauge("service.sessions.active").value -= 1
            self._fold_session(session, session_tele, time.monotonic() - started)
        if terminal is not None:
            try:
                await self._send(writer, terminal)
                events_counter.inc()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _fold_session(self, session, session_tele: Telemetry, duration: float) -> None:
        """Fold a finished session's telemetry into the service context."""
        self.telemetry.extend_events(session_tele.drain_events())
        self.registry.histogram("service.session_seconds").observe(duration)
        try:
            metrics = session.metrics()
        except Exception:
            return
        for source_key, dest_key in (
            ("cache.cross_run_hits", "service.cache.cross_run_hits"),
            ("parallel.persistent_loaded", "service.cache.persistent_loaded"),
            ("recovery.worker_crashes", "service.recovery.worker_crashes"),
            ("recovery.requeued_chunks", "service.recovery.requeued_chunks"),
            ("recovery.quarantined_states", "service.recovery.quarantined_states"),
            ("solver.deadline_unknowns", "service.solver.deadline_unknowns"),
            ("checkpoint.saves", "service.checkpoint.saves"),
            ("checkpoint.resumes", "service.checkpoint.resumes"),
        ):
            value = metrics.get(source_key, 0)
            if isinstance(value, (int, float)) and value:
                self.registry.counter(dest_key).inc(int(value))
        elapsed = max(time.monotonic() - self._start_time, 1e-9)
        finished = self.registry.counter("service.sessions.finished").value
        self.registry.gauge("service.sessions_per_sec").set(finished / elapsed)

    def _build_session(
        self, request: Dict[str, Any], session_tele: Telemetry
    ) -> SymbolicSession:
        """Construct the session a ``run`` request describes.

        Targets are either raw Clay source (``clay``) explored via
        :meth:`SymbolicSession.from_program`, or a registered guest
        language (``language`` + ``source``).  The target's content
        digest keys both the symbolic namespace (deterministic
        fingerprints) and its persistent cache store.
        """
        chef_config = self._clamp_config(request.get("config") or {})
        resume_path = request.get("resume")
        if resume_path is not None:
            # Continue a checkpointed campaign under this service's
            # clamps: budgets/worker-count/trace are service policy even
            # though the persisted config carries the original values.
            return SymbolicSession.resume(
                resume_path,
                workers=self.config.workers,
                telemetry=session_tele,
                time_budget=chef_config.time_budget,
                max_ll_paths=chef_config.max_ll_paths,
                solver_deadline_s=chef_config.solver_deadline_s,
                trace=self.config.trace,
            )
        clay_source = request.get("clay")
        language = request.get("language")
        source = request.get("source")
        if clay_source is not None:
            digest = self._digest("clay", clay_source)
            from repro.clay import compile_program

            program = compile_program(clay_source).program
            chef_config = replace(chef_config, cache_store=self._store_path(digest))
            return SymbolicSession.from_program(
                program,
                chef_config,
                namespace=f"svc{digest}:",
                telemetry=session_tele,
            )
        if language and source is not None:
            digest = self._digest(str(language), source)
            chef_config = replace(chef_config, cache_store=self._store_path(digest))
            return SymbolicSession(
                language, source, chef_config, namespace=f"svc{digest}:"
            )
        raise ValueError("run request needs 'clay' or 'language' + 'source'")

    def _clamp_config(self, requested: Dict[str, Any]) -> ChefConfig:
        """Budget-clamped :class:`ChefConfig` for one session.

        Clients choose strategy/seed/budgets within the service caps;
        worker count and tracing are service policy, never the client's.
        """
        config = ChefConfig()
        for field_name in (
            "strategy",
            "seed",
            "max_hl_paths",
            "path_instr_budget",
            "solver_budget",
            "sample_every",
            "worker_batch",
            "unknown_policy",
            "quarantine_threshold",
            "checkpoint_dir",
            "checkpoint_every",
        ):
            if field_name in requested:
                config = replace(config, **{field_name: requested[field_name]})
        time_budget = float(requested.get("time_budget", self.config.max_time_budget))
        max_ll_paths = int(requested.get("max_ll_paths", 0))
        if max_ll_paths <= 0:
            max_ll_paths = self.config.max_ll_paths
        # Solver deadlines clamp toward *responsiveness*: a session may
        # ask for a tighter deadline than the service cap, never a
        # looser one (and with a cap set, "no deadline" means the cap).
        deadline = requested.get("solver_deadline_s")
        cap = self.config.max_solver_deadline_s
        if cap is not None:
            deadline = min(float(deadline), cap) if deadline else cap
        elif deadline is not None:
            deadline = float(deadline)
        return replace(
            config,
            time_budget=min(time_budget, self.config.max_time_budget),
            max_ll_paths=min(max_ll_paths, self.config.max_ll_paths),
            solver_deadline_s=deadline,
            workers=self.config.workers,
            trace=self.config.trace,
        )

    @staticmethod
    def _digest(kind: str, source: str) -> str:
        return hashlib.blake2b(
            f"{kind}\x00{source}".encode("utf-8"), digest_size=6
        ).hexdigest()

    def _store_path(self, digest: str) -> Optional[str]:
        if not self.config.cache_dir:
            return None
        return os.path.join(self.config.cache_dir, f"{digest}.cache")

    # -- introspection ---------------------------------------------------------

    def _stats(self) -> Dict[str, Any]:
        from repro.parallel.pool import shared_worker_pool

        pool = shared_worker_pool(self.config.workers)
        return {
            "ok": True,
            "op": "stats",
            "uptime": time.monotonic() - self._start_time,
            "metrics": self.telemetry.metrics(),
            "pool": {
                "workers": pool.workers,
                "epoch": pool.epoch,
                "spawns": pool.spawns,
                "program_ships": pool.program_ships,
                "configures": pool.configures,
                "kills": pool.kills,
            },
        }

    def write_chrome_trace(self, path) -> None:
        """Export service + per-session lanes as a Chrome-trace file."""
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, self.telemetry)
