"""Basic-block recovery over TAC functions.

The emitter does not walk the flat TAC list directly: it consumes the CFG,
placing one LVM label per block leader and wiring jumps block-to-block, so
the block structure computed here *is* the control flow the LVM executes.
Golden tests pin block boundaries and the edge list for small programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.frontend.tac import CJMP, JMP, RAISE, RET, TacFunction


@dataclass
class BasicBlock:
    """Half-open instruction range ``[start, end)`` with successor leaders."""

    index: int
    start: int
    end: int
    successors: Tuple[int, ...] = field(default_factory=tuple)


@dataclass
class Cfg:
    """Blocks in leader order; ``block_of`` maps a leader index to a block."""

    function: str
    blocks: List[BasicBlock]
    block_of: Dict[int, BasicBlock]

    def edge_list(self) -> List[Tuple[int, int]]:
        """(block index, successor block index) pairs, in block order."""
        edges: List[Tuple[int, int]] = []
        for block in self.blocks:
            for leader in block.successors:
                edges.append((block.index, self.block_of[leader].index))
        return edges

    def dump(self) -> str:
        lines = [f"cfg {self.function}: {len(self.blocks)} blocks"]
        for block in self.blocks:
            succ = ", ".join(
                f"B{self.block_of[s].index}" for s in block.successors
            )
            lines.append(
                f"  B{block.index} [{block.start}..{block.end}) -> {succ or '-'}"
            )
        return "\n".join(lines)


def build_cfg(fn: TacFunction) -> Cfg:
    """Leader analysis: entry, every jump target, every post-terminator."""
    n = len(fn.instrs)
    leaders = {0}
    for i, instr in enumerate(fn.instrs):
        if instr.op == JMP:
            leaders.add(instr.extra)
            if i + 1 < n:
                leaders.add(i + 1)
        elif instr.op == CJMP:
            leaders.add(instr.b)
            leaders.add(instr.extra)
            if i + 1 < n:
                leaders.add(i + 1)
        elif instr.op in (RET, RAISE):
            if i + 1 < n:
                leaders.add(i + 1)
    ordered = sorted(leader for leader in leaders if leader < n)
    blocks: List[BasicBlock] = []
    block_of: Dict[int, BasicBlock] = {}
    for bi, start in enumerate(ordered):
        end = ordered[bi + 1] if bi + 1 < len(ordered) else n
        last = fn.instrs[end - 1]
        if last.op == JMP:
            succ: Tuple[int, ...] = (last.extra,)
        elif last.op == CJMP:
            succ = (last.b, last.extra)
        elif last.op in (RET, RAISE):
            succ = ()
        else:
            succ = (end,) if end < n else ()
        block = BasicBlock(index=bi, start=start, end=end, successors=succ)
        blocks.append(block)
        block_of[start] = block
    return Cfg(function=fn.name, blocks=blocks, block_of=block_of)


__all__ = ["BasicBlock", "Cfg", "build_cfg"]
