"""Hand-assembled LIR runtime library for PyLite programs.

Compiled PyLite never manipulates raw words: every TAC value is the
address of a tagged box, and every operator lowers to a ``CALL`` into one
of these functions.  The library is what the Clay interpreter is for
MiniPy — except here it is ~30 small LIR routines instead of a whole
interpreter, because the frontend already compiled the control flow.

Memory layout (word-addressed):

====  =======================================================
addr  meaning
====  =======================================================
0     heap pointer cell (bump allocator; initialised to the
      end of the static pool by the emitter)
1     current source line (kept for exception events)
2     the ``None`` singleton box
3..   static pool: interned int/str boxes and global cells
====  =======================================================

Box layouts: int ``[1, payload]`` — str ``[2, len, chars...]`` — list
``[3, len, cap, elems_addr]`` — dict ``[4, len, cap, entries_addr]``
(key/value pairs interleaved) — None ``[5]``.  Lengths and tags are
always concrete; payloads and characters may be symbolic, so tag
dispatch never forks while value comparisons fold into expressions.

Exceptions: :func:`~.tac.EXC_IDS` type ids travel through the ``event``
hypercall (``EVENT_UNCAUGHT_EXCEPTION`` with the current line), then
``end_symbolic(1)`` halts the machine — PyLite has no ``try``, so every
raise ends the path, mirroring an uncaught CPython exception.
"""

from __future__ import annotations

from typing import List

from repro.lowlevel import api
from repro.lowlevel.program import Function, FunctionBuilder, Opcode

#: value tags (the first word of every box).
TAG_INT = 1
TAG_STR = 2
TAG_LIST = 3
TAG_DICT = 4
TAG_NONE = 5

#: fixed cells (see module docstring).
HP_ADDR = 0
LINE_ADDR = 1
NONE_ADDR = 2

#: exception ids used by the runtime (match tac.EXC_IDS).
_VALUE_ERROR = 2
_TYPE_ERROR = 3
_KEY_ERROR = 4
_INDEX_ERROR = 5
_ZERO_DIV = 7
_NAME_ERROR = 10
_UNBOUND_LOCAL = 11


class Asm:
    """Thin sugar over :class:`FunctionBuilder` for hand-written LIR."""

    def __init__(self, name: str, n_params: int):
        self.b = FunctionBuilder(name, n_params)

    # values ------------------------------------------------------------------
    def imm(self, value: int) -> int:
        return self.b.const(value)

    def bin(self, op: str, a: int, b: int) -> int:
        dst = self.b.new_reg()
        self.b.emit(Opcode.BIN, dst=dst, a=a, b=b, extra=op)
        return dst

    def un(self, op: str, a: int) -> int:
        dst = self.b.new_reg()
        self.b.emit(Opcode.UN, dst=dst, a=a, extra=op)
        return dst

    def add(self, a: int, b: int) -> int:
        return self.bin("add", a, b)

    def addi(self, a: int, imm: int) -> int:
        return self.bin("add", a, self.imm(imm))

    def move(self, dst: int, src: int) -> None:
        self.b.emit(Opcode.MOVE, dst=dst, a=src)

    def reg(self) -> int:
        return self.b.new_reg()

    # memory ------------------------------------------------------------------
    def load(self, addr_reg: int) -> int:
        dst = self.b.new_reg()
        self.b.emit(Opcode.LOAD, dst=dst, a=addr_reg)
        return dst

    def loadi(self, addr: int) -> int:
        return self.load(self.imm(addr))

    def load_at(self, base_reg: int, offset: int) -> int:
        return self.load(self.addi(base_reg, offset) if offset else base_reg)

    def store(self, addr_reg: int, value_reg: int) -> None:
        self.b.emit(Opcode.STORE, a=addr_reg, b=value_reg)

    def storei(self, addr: int, value_reg: int) -> None:
        self.store(self.imm(addr), value_reg)

    def store_at(self, base_reg: int, offset: int, value_reg: int) -> None:
        self.store(self.addi(base_reg, offset) if offset else base_reg,
                   value_reg)

    # control -----------------------------------------------------------------
    def label(self) -> int:
        return self.b.new_label()

    def place(self, label: int) -> None:
        self.b.place_label(label)

    def jmp(self, label: int) -> None:
        self.b.emit(Opcode.JMP, a=FunctionBuilder.label_ref(label))

    def br(self, cond_reg: int, if_true: int, if_false: int) -> None:
        self.b.emit(Opcode.BR, a=cond_reg,
                    b=FunctionBuilder.label_ref(if_true),
                    extra=FunctionBuilder.label_ref(if_false))

    def br_tag(self, tag_reg: int, tag: int, if_eq: int, if_ne: int) -> None:
        self.br(self.bin("eq", tag_reg, self.imm(tag)), if_eq, if_ne)

    def call(self, name: str, args: List[int]) -> int:
        dst = self.b.new_reg()
        self.b.emit(Opcode.CALL, dst=dst, extra=name, args=list(args))
        return dst

    def hyper(self, name: str, args: List[int]) -> int:
        dst = self.b.new_reg()
        self.b.emit(Opcode.HYPER, dst=dst, extra=name, args=list(args))
        return dst

    def ret(self, value_reg: int) -> None:
        self.b.emit(Opcode.RET, a=value_reg)

    def reti(self, value: int) -> None:
        self.ret(self.imm(value))

    def raise_(self, exc_id: int) -> None:
        """Raise and terminate; emits an (unreachable) return for the CFG."""
        self.call("rt_raise", [self.imm(exc_id)])
        self.reti(0)

    def counter_loop(self, limit_reg: int):
        """``for i in range(limit)`` scaffolding.

        Returns ``(i, finish)`` — emit the body reading counter reg ``i``,
        then call ``finish()`` to close the loop::

            i, finish = asm.counter_loop(n)
            ...body...
            finish()
        """
        i = self.reg()
        self.move(i, self.imm(0))
        test, body, done = self.label(), self.label(), self.label()
        self.place(test)
        self.br(self.bin("lt", i, limit_reg), body, done)
        self.place(body)

        def finish():
            self.move(i, self.addi(i, 1))
            self.jmp(test)
            self.place(done)

        return i, finish

    def copy_words(self, dst_reg: int, src_reg: int, count_reg: int) -> None:
        i, finish = self.counter_loop(count_reg)
        self.store(self.add(dst_reg, i), self.load(self.add(src_reg, i)))
        finish()

    def finish(self) -> Function:
        return self.b.finish()


# -- the library --------------------------------------------------------------


def _rt_alloc() -> Function:
    f = Asm("rt_alloc", 1)
    hp = f.loadi(HP_ADDR)
    f.storei(HP_ADDR, f.add(hp, 0))
    f.ret(hp)
    return f.finish()


def _rt_raise() -> Function:
    f = Asm("rt_raise", 1)
    line = f.loadi(LINE_ADDR)
    f.hyper(api.EVENT, [f.imm(api.EVENT_UNCAUGHT_EXCEPTION), 0, line])
    f.hyper(api.END_SYMBOLIC, [f.imm(1)])
    f.reti(0)  # unreachable: end_symbolic halts the machine
    return f.finish()


def _rt_check(name: str, exc_id: int) -> Function:
    """Unassigned-slot guard: box addresses are never 0."""
    f = Asm(name, 1)
    ok, bad = f.label(), f.label()
    f.br(0, ok, bad)
    f.place(bad)
    f.raise_(exc_id)
    f.place(ok)
    f.ret(0)
    return f.finish()


def _rt_box() -> Function:
    f = Asm("rt_box", 1)
    box = f.call("rt_alloc", [f.imm(2)])
    f.store_at(box, 0, f.imm(TAG_INT))
    f.store_at(box, 1, 0)
    f.ret(box)
    return f.finish()


def _rt_truth() -> Function:
    f = Asm("rt_truth", 1)
    tag = f.load(0)
    is_int, not_int = f.label(), f.label()
    f.br_tag(tag, TAG_INT, is_int, not_int)
    f.place(is_int)
    f.ret(f.bin("ne", f.load_at(0, 1), f.imm(0)))
    f.place(not_int)
    is_none, sized = f.label(), f.label()
    f.br_tag(tag, TAG_NONE, is_none, sized)
    f.place(is_none)
    f.reti(0)
    f.place(sized)  # str/list/dict all keep a concrete length at +1
    f.ret(f.bin("ne", f.load_at(0, 1), f.imm(0)))
    return f.finish()


def _rt_not() -> Function:
    f = Asm("rt_not", 1)
    truth = f.call("rt_truth", [0])
    f.ret(f.call("rt_box", [f.un("lnot", truth)]))
    return f.finish()


def _rt_intval() -> Function:
    f = Asm("rt_intval", 1)
    ok, bad = f.label(), f.label()
    f.br_tag(f.load(0), TAG_INT, ok, bad)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    f.place(ok)
    f.ret(f.load_at(0, 1))
    return f.finish()


def _rt_neg() -> Function:
    f = Asm("rt_neg", 1)
    f.ret(f.call("rt_box", [f.un("neg", f.call("rt_intval", [0]))]))
    return f.finish()


def _rt_int_binop(name: str, op: str) -> Function:
    f = Asm(name, 2)
    wa = f.call("rt_intval", [0])
    wb = f.call("rt_intval", [1])
    f.ret(f.call("rt_box", [f.bin(op, wa, wb)]))
    return f.finish()


def _rt_int_divlike(name: str, op: str) -> Function:
    f = Asm(name, 2)
    wa = f.call("rt_intval", [0])
    wb = f.call("rt_intval", [1])
    zero, ok = f.label(), f.label()
    # The explicit guard makes the zero-divisor path a real PyLite path
    # (ZeroDivisionError test case) instead of the executor's dropped-path
    # deviation for raw symbolic division.
    f.br(f.bin("eq", wb, f.imm(0)), zero, ok)
    f.place(zero)
    f.raise_(_ZERO_DIV)
    f.place(ok)
    f.ret(f.call("rt_box", [f.bin(op, wa, wb)]))
    return f.finish()


def _rt_add() -> Function:
    f = Asm("rt_add", 2)
    ta = f.load(0)
    tb = f.load(1)
    int_a, not_int = f.label(), f.label()
    f.br_tag(ta, TAG_INT, int_a, not_int)
    f.place(int_a)
    int_ok, bad = f.label(), f.label()
    f.br_tag(tb, TAG_INT, int_ok, bad)
    f.place(int_ok)
    f.ret(f.call("rt_box", [f.bin("add", f.load_at(0, 1), f.load_at(1, 1))]))
    f.place(not_int)
    str_a, not_str = f.label(), f.label()
    f.br_tag(ta, TAG_STR, str_a, not_str)
    f.place(str_a)
    str_ok = f.label()
    f.br_tag(tb, TAG_STR, str_ok, bad)
    f.place(str_ok)
    na = f.load_at(0, 1)
    nb = f.load_at(1, 1)
    total = f.add(na, nb)
    box = f.call("rt_alloc", [f.addi(total, 2)])
    f.store_at(box, 0, f.imm(TAG_STR))
    f.store_at(box, 1, total)
    f.copy_words(f.addi(box, 2), f.addi(0, 2), na)
    f.copy_words(f.add(f.addi(box, 2), na), f.addi(1, 2), nb)
    f.ret(box)
    f.place(not_str)
    list_a = f.label()
    f.br_tag(ta, TAG_LIST, list_a, bad)
    f.place(list_a)
    list_ok = f.label()
    f.br_tag(tb, TAG_LIST, list_ok, bad)
    f.place(list_ok)
    na2 = f.load_at(0, 1)
    nb2 = f.load_at(1, 1)
    total2 = f.add(na2, nb2)
    box2 = f.call("rt_alloc", [f.imm(4)])
    elems = f.call("rt_alloc", [total2])
    f.store_at(box2, 0, f.imm(TAG_LIST))
    f.store_at(box2, 1, total2)
    f.store_at(box2, 2, total2)
    f.store_at(box2, 3, elems)
    f.copy_words(elems, f.load_at(0, 3), na2)
    f.copy_words(f.add(elems, na2), f.load_at(1, 3), nb2)
    f.ret(box2)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_eqw() -> Function:
    """Structural equality as a *word* (0/1, possibly symbolic; no forks)."""
    f = Asm("rt_eqw", 2)
    same, differ = f.label(), f.label()
    f.br(f.bin("eq", 0, 1), same, differ)
    f.place(same)
    f.reti(1)
    f.place(differ)
    ta = f.load(0)
    tb = f.load(1)
    ret0 = f.label()
    tags_eq = f.label()
    f.br(f.bin("eq", ta, tb), tags_eq, ret0)
    f.place(ret0)
    f.reti(0)
    f.place(tags_eq)
    is_int, not_int = f.label(), f.label()
    f.br_tag(ta, TAG_INT, is_int, not_int)
    f.place(is_int)
    f.ret(f.bin("eq", f.load_at(0, 1), f.load_at(1, 1)))
    f.place(not_int)
    is_none, not_none = f.label(), f.label()
    f.br_tag(ta, TAG_NONE, is_none, not_none)
    f.place(is_none)
    f.reti(1)
    f.place(not_none)
    is_str, not_str = f.label(), f.label()
    f.br_tag(ta, TAG_STR, is_str, not_str)
    f.place(is_str)
    na = f.load_at(0, 1)
    len_eq = f.label()
    f.br(f.bin("eq", na, f.load_at(1, 1)), len_eq, ret0)
    f.place(len_eq)
    # and-fold the per-char equalities into one expression: comparing two
    # symbolic strings costs zero forks.
    acc = f.reg()
    f.move(acc, f.imm(1))
    i, finish = f.counter_loop(na)
    ca = f.load(f.add(f.addi(0, 2), i))
    cb = f.load(f.add(f.addi(1, 2), i))
    f.move(acc, f.bin("land", acc, f.bin("eq", ca, cb)))
    finish()
    f.ret(acc)
    f.place(not_str)
    is_list, bad = f.label(), f.label()
    f.br_tag(ta, TAG_LIST, is_list, bad)
    f.place(is_list)
    nla = f.load_at(0, 1)
    llen_eq = f.label()
    f.br(f.bin("eq", nla, f.load_at(1, 1)), llen_eq, ret0)
    f.place(llen_eq)
    ea = f.load_at(0, 3)
    eb = f.load_at(1, 3)
    lacc = f.reg()
    f.move(lacc, f.imm(1))
    j, lfinish = f.counter_loop(nla)
    va = f.load(f.add(ea, j))
    vb = f.load(f.add(eb, j))
    f.move(lacc, f.bin("land", lacc, f.call("rt_eqw", [va, vb])))
    lfinish()
    f.ret(lacc)
    f.place(bad)  # dict equality is outside PyLite (documented)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_eq() -> Function:
    f = Asm("rt_eq", 2)
    f.ret(f.call("rt_box", [f.call("rt_eqw", [0, 1])]))
    return f.finish()


def _rt_ne() -> Function:
    f = Asm("rt_ne", 2)
    f.ret(f.call("rt_box", [f.un("lnot", f.call("rt_eqw", [0, 1]))]))
    return f.finish()


def _rt_len() -> Function:
    f = Asm("rt_len", 1)
    tag = f.load(0)
    ok, bad = f.label(), f.label()
    n1, n2 = f.label(), f.label()
    f.br_tag(tag, TAG_STR, ok, n1)
    f.place(n1)
    f.br_tag(tag, TAG_LIST, ok, n2)
    f.place(n2)
    f.br_tag(tag, TAG_DICT, ok, bad)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    f.place(ok)
    f.ret(f.call("rt_box", [f.load_at(0, 1)]))
    return f.finish()


def _normalize_index(f: Asm, idx_box: int, length_reg: int) -> int:
    """Python index semantics: negative wraps once, then bounds-check."""
    raw = f.call("rt_intval", [idx_box])
    norm = f.reg()
    f.move(norm, raw)
    neg, check = f.label(), f.label()
    f.br(f.bin("lt", raw, f.imm(0)), neg, check)
    f.place(neg)
    f.move(norm, f.add(raw, length_reg))
    f.jmp(check)
    f.place(check)
    ok, oob = f.label(), f.label()
    in_range = f.bin(
        "land",
        f.bin("ge", norm, f.imm(0)),
        f.bin("lt", norm, length_reg),
    )
    f.br(in_range, ok, oob)
    f.place(oob)
    f.raise_(_INDEX_ERROR)
    f.place(ok)
    return norm


def _rt_index() -> Function:
    f = Asm("rt_index", 2)
    tag = f.load(0)
    is_str, n1 = f.label(), f.label()
    f.br_tag(tag, TAG_STR, is_str, n1)
    f.place(is_str)
    n = f.load_at(0, 1)
    i = _normalize_index(f, 1, n)
    ch = f.load(f.add(f.addi(0, 2), i))
    box = f.call("rt_alloc", [f.imm(3)])
    f.store_at(box, 0, f.imm(TAG_STR))
    f.store_at(box, 1, f.imm(1))
    f.store_at(box, 2, ch)
    f.ret(box)
    f.place(n1)
    is_list, n2 = f.label(), f.label()
    f.br_tag(tag, TAG_LIST, is_list, n2)
    f.place(is_list)
    ln = f.load_at(0, 1)
    li = _normalize_index(f, 1, ln)
    f.ret(f.load(f.add(f.load_at(0, 3), li)))
    f.place(n2)
    is_dict, bad = f.label(), f.label()
    f.br_tag(tag, TAG_DICT, is_dict, bad)
    f.place(is_dict)
    f.ret(f.call("rt_dget", [0, 1]))
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_dget() -> Function:
    f = Asm("rt_dget", 2)
    n = f.load_at(0, 1)
    entries = f.load_at(0, 3)
    i, finish = f.counter_loop(n)
    slot = f.add(entries, f.add(i, i))
    found, next_ = f.label(), f.label()
    f.br(f.call("rt_eqw", [f.load(slot), 1]), found, next_)
    f.place(found)
    f.ret(f.load(f.addi(slot, 1)))
    f.place(next_)
    finish()
    f.raise_(_KEY_ERROR)
    return f.finish()


def _rt_setindex() -> Function:
    f = Asm("rt_setindex", 3)
    tag = f.load(0)
    is_list, n1 = f.label(), f.label()
    f.br_tag(tag, TAG_LIST, is_list, n1)
    f.place(is_list)
    n = f.load_at(0, 1)
    i = _normalize_index(f, 1, n)
    f.store(f.add(f.load_at(0, 3), i), 2)
    f.reti(NONE_ADDR)
    f.place(n1)
    is_dict, bad = f.label(), f.label()
    f.br_tag(tag, TAG_DICT, is_dict, bad)
    f.place(is_dict)
    f.call("rt_dput", [0, 1, 2])
    f.reti(NONE_ADDR)
    f.place(bad)  # strings are immutable; anything else is not indexable
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_dput() -> Function:
    f = Asm("rt_dput", 3)
    n = f.load_at(0, 1)
    i, finish = f.counter_loop(n)
    slot = f.add(f.load_at(0, 3), f.add(i, i))
    found, next_ = f.label(), f.label()
    f.br(f.call("rt_eqw", [f.load(slot), 1]), found, next_)
    f.place(found)
    f.store(f.addi(slot, 1), 2)
    f.reti(0)
    f.place(next_)
    finish()
    cap = f.load_at(0, 2)
    room, grow = f.label(), f.label()
    append = f.label()
    f.br(f.bin("lt", n, cap), room, grow)
    f.place(grow)
    newcap = f.addi(f.bin("mul", cap, f.imm(2)), 4)
    newent = f.call("rt_alloc", [f.bin("mul", newcap, f.imm(2))])
    f.copy_words(newent, f.load_at(0, 3), f.add(n, n))
    f.store_at(0, 2, newcap)
    f.store_at(0, 3, newent)
    f.jmp(append)
    f.place(room)
    f.jmp(append)
    f.place(append)
    entries = f.load_at(0, 3)
    slot2 = f.add(entries, f.add(n, n))
    f.store(slot2, 1)
    f.store(f.addi(slot2, 1), 2)
    f.store_at(0, 1, f.addi(n, 1))
    f.reti(0)
    return f.finish()


def _rt_append() -> Function:
    f = Asm("rt_append", 2)
    ok, bad = f.label(), f.label()
    f.br_tag(f.load(0), TAG_LIST, ok, bad)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    f.place(ok)
    n = f.load_at(0, 1)
    cap = f.load_at(0, 2)
    room, grow, push = f.label(), f.label(), f.label()
    f.br(f.bin("lt", n, cap), room, grow)
    f.place(grow)
    newcap = f.addi(f.bin("mul", cap, f.imm(2)), 4)
    newelems = f.call("rt_alloc", [newcap])
    f.copy_words(newelems, f.load_at(0, 3), n)
    f.store_at(0, 2, newcap)
    f.store_at(0, 3, newelems)
    f.jmp(push)
    f.place(room)
    f.jmp(push)
    f.place(push)
    f.store(f.add(f.load_at(0, 3), n), 1)
    f.store_at(0, 1, f.addi(n, 1))
    f.reti(NONE_ADDR)
    return f.finish()


def _rt_contains() -> Function:
    """``needle in hay`` as an or-fold — membership costs zero forks."""
    f = Asm("rt_contains", 2)
    tag = f.load(0)
    is_list, n1 = f.label(), f.label()
    f.br_tag(tag, TAG_LIST, is_list, n1)
    f.place(is_list)
    n = f.load_at(0, 1)
    elems = f.load_at(0, 3)
    acc = f.reg()
    f.move(acc, f.imm(0))
    i, finish = f.counter_loop(n)
    f.move(acc, f.bin("lor", acc, f.call("rt_eqw", [f.load(f.add(elems, i)), 1])))
    finish()
    f.ret(f.call("rt_box", [acc]))
    f.place(n1)
    is_dict, n2 = f.label(), f.label()
    f.br_tag(tag, TAG_DICT, is_dict, n2)
    f.place(is_dict)
    dn = f.load_at(0, 1)
    entries = f.load_at(0, 3)
    dacc = f.reg()
    f.move(dacc, f.imm(0))
    di, dfinish = f.counter_loop(dn)
    key = f.load(f.add(entries, f.add(di, di)))
    f.move(dacc, f.bin("lor", dacc, f.call("rt_eqw", [key, 1])))
    dfinish()
    f.ret(f.call("rt_box", [dacc]))
    f.place(n2)
    is_str, bad = f.label(), f.label()
    f.br_tag(tag, TAG_STR, is_str, bad)
    f.place(is_str)
    str_ok = f.label()
    f.br_tag(f.load(1), TAG_STR, str_ok, bad)
    f.place(str_ok)
    hn = f.load_at(0, 1)
    nn = f.load_at(1, 1)
    empty, non_empty = f.label(), f.label()
    f.br(f.bin("eq", nn, f.imm(0)), empty, non_empty)
    f.place(empty)
    f.ret(f.call("rt_box", [f.imm(1)]))
    f.place(non_empty)
    # substring scan: or over start offsets of and-folded char windows.
    sacc = f.reg()
    f.move(sacc, f.imm(0))
    starts = f.addi(f.bin("sub", hn, nn), 1)
    clamped = f.reg()
    f.move(clamped, starts)
    pos, nonneg = f.label(), f.label()
    f.br(f.bin("lt", starts, f.imm(0)), pos, nonneg)
    f.place(pos)
    f.move(clamped, f.imm(0))
    f.jmp(nonneg)
    f.place(nonneg)
    s, sfinish = f.counter_loop(clamped)
    window = f.reg()
    f.move(window, f.imm(1))
    j, jfinish = f.counter_loop(nn)
    hc = f.load(f.add(f.add(f.addi(0, 2), s), j))
    nc = f.load(f.add(f.addi(1, 2), j))
    f.move(window, f.bin("land", window, f.bin("eq", hc, nc)))
    jfinish()
    f.move(sacc, f.bin("lor", sacc, window))
    sfinish()
    f.ret(f.call("rt_box", [sacc]))
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_ord() -> Function:
    f = Asm("rt_ord", 1)
    is_str, bad = f.label(), f.label()
    f.br_tag(f.load(0), TAG_STR, is_str, bad)
    f.place(is_str)
    one = f.label()
    f.br(f.bin("eq", f.load_at(0, 1), f.imm(1)), one, bad)
    f.place(one)
    f.ret(f.call("rt_box", [f.load_at(0, 2)]))
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_chr() -> Function:
    f = Asm("rt_chr", 1)
    w = f.call("rt_intval", [0])
    ok, bad = f.label(), f.label()
    in_range = f.bin(
        "land",
        f.bin("ge", w, f.imm(0)),
        f.bin("le", w, f.imm(255)),
    )
    f.br(in_range, ok, bad)  # PyLite chars are bytes: chr(x) needs 0..255
    f.place(bad)
    f.raise_(_VALUE_ERROR)
    f.place(ok)
    box = f.call("rt_alloc", [f.imm(3)])
    f.store_at(box, 0, f.imm(TAG_STR))
    f.store_at(box, 1, f.imm(1))
    f.store_at(box, 2, w)
    f.ret(box)
    return f.finish()


def _rt_print() -> Function:
    """Observable output: value words then a newline (10), per print call."""
    f = Asm("rt_print", 1)
    tag = f.load(0)
    is_int, n1 = f.label(), f.label()
    f.br_tag(tag, TAG_INT, is_int, n1)
    f.place(is_int)
    f.hyper(api.OUT, [f.load_at(0, 1)])
    f.hyper(api.OUT, [f.imm(10)])
    f.reti(NONE_ADDR)
    f.place(n1)
    is_str, bad = f.label(), f.label()
    f.br_tag(tag, TAG_STR, is_str, bad)
    f.place(is_str)
    n = f.load_at(0, 1)
    i, finish = f.counter_loop(n)
    f.hyper(api.OUT, [f.load(f.add(f.addi(0, 2), i))])
    finish()
    f.hyper(api.OUT, [f.imm(10)])
    f.reti(NONE_ADDR)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def _rt_sym_string() -> Function:
    f = Asm("rt_sym_string", 1)
    ok, bad = f.label(), f.label()
    f.br_tag(f.load(0), TAG_STR, ok, bad)
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    f.place(ok)
    n = f.load_at(0, 1)
    box = f.call("rt_alloc", [f.addi(n, 2)])
    f.store_at(box, 0, f.imm(TAG_STR))
    f.store_at(box, 1, n)
    chars = f.addi(box, 2)
    f.copy_words(chars, f.addi(0, 2), n)
    f.hyper(api.MAKE_SYMBOLIC, [chars, n, f.imm(0), f.imm(255)])
    f.ret(box)
    return f.finish()


def _rt_sym_int() -> Function:
    f = Asm("rt_sym_int", 3)
    seed = f.call("rt_intval", [0])
    lo = f.call("rt_intval", [1])
    hi = f.call("rt_intval", [2])
    box = f.call("rt_alloc", [f.imm(2)])
    f.store_at(box, 0, f.imm(TAG_INT))
    payload = f.addi(box, 1)
    f.store(payload, seed)
    f.hyper(api.MAKE_SYMBOLIC, [payload, f.imm(1), lo, hi])
    f.ret(box)
    return f.finish()


def _rt_make_symbolic() -> Function:
    f = Asm("rt_make_symbolic", 1)
    tag = f.load(0)
    is_int, n1 = f.label(), f.label()
    f.br_tag(tag, TAG_INT, is_int, n1)
    f.place(is_int)
    box = f.call("rt_alloc", [f.imm(2)])
    f.store_at(box, 0, f.imm(TAG_INT))
    payload = f.addi(box, 1)
    f.store(payload, f.load_at(0, 1))
    f.hyper(api.MAKE_SYMBOLIC, [payload, f.imm(1), f.imm(0), f.imm(255)])
    f.ret(box)
    f.place(n1)
    is_str, bad = f.label(), f.label()
    f.br_tag(tag, TAG_STR, is_str, bad)
    f.place(is_str)
    f.ret(f.call("rt_sym_string", [0]))
    f.place(bad)
    f.raise_(_TYPE_ERROR)
    return f.finish()


def build_runtime() -> List[Function]:
    """Every runtime function, ready to add to a fresh Program."""
    return [
        _rt_alloc(),
        _rt_raise(),
        _rt_check("rt_chklocal", _UNBOUND_LOCAL),
        _rt_check("rt_chkname", _NAME_ERROR),
        _rt_box(),
        _rt_truth(),
        _rt_not(),
        _rt_intval(),
        _rt_neg(),
        _rt_int_binop("rt_sub", "sub"),
        _rt_int_binop("rt_mul", "mul"),
        _rt_int_binop("rt_lt", "lt"),
        _rt_int_binop("rt_le", "le"),
        _rt_int_binop("rt_gt", "gt"),
        _rt_int_binop("rt_ge", "ge"),
        _rt_int_divlike("rt_div", "div"),
        _rt_int_divlike("rt_mod", "mod"),
        _rt_add(),
        _rt_eqw(),
        _rt_eq(),
        _rt_ne(),
        _rt_len(),
        _rt_index(),
        _rt_dget(),
        _rt_setindex(),
        _rt_dput(),
        _rt_append(),
        _rt_contains(),
        _rt_ord(),
        _rt_chr(),
        _rt_print(),
        _rt_sym_string(),
        _rt_sym_int(),
        _rt_make_symbolic(),
    ]


__all__ = [
    "Asm", "HP_ADDR", "LINE_ADDR", "NONE_ADDR", "TAG_DICT", "TAG_INT",
    "TAG_LIST", "TAG_NONE", "TAG_STR", "build_runtime",
]
