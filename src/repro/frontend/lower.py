"""``ast`` → TAC lowering for the PyLite subset.

PyLite is restricted-but-real Python: the accepted surface is ints, bools,
strings, ``None``, lists, dicts, ``if``/``while``/``for .. in range(...)``,
top-level functions, single-target assignment (names and subscripts),
``assert``/``raise``/``break``/``continue``/``return``, short-circuit
``and``/``or``, single comparisons (including ``in``/``not in``), the
builtins ``len``/``ord``/``chr``/``print``, the ``lst.append(x)`` method,
and the symbolic intrinsics ``sym_string``/``sym_int``/``make_symbolic``.
Anything outside the subset raises :class:`PyLiteSyntaxError` with the
offending source line, never silently mis-compiling.

Scoping follows CPython: module-level names are globals; inside a function
every name assigned anywhere in its body is a local (reads before binding
raise ``UnboundLocalError`` via CHK), and everything else resolves through
the global cells (``NameError`` when unbound).  ``for`` loops keep the
CPython contract that the loop variable is only bound when the body runs —
the induction counter is a hidden temp, copied into the variable at the
top of each iteration.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.frontend import tac
from repro.frontend.tac import EXC_IDS, STMT_KINDS, TacFunction, TacInstr, TacModule

#: builtins callable from PyLite source (mapped 1:1 onto runtime helpers).
BUILTIN_ARITY = {
    "len": (1, 1),
    "ord": (1, 1),
    "chr": (1, 1),
    "print": (1, 1),
    "sym_string": (1, 1),
    "sym_int": (1, 3),
    "make_symbolic": (1, 1),
}

_CMP_OPS = {
    ast.Eq: "eq", ast.NotEq: "ne", ast.Lt: "lt", ast.LtE: "le",
    ast.Gt: "gt", ast.GtE: "ge",
}

_BIN_OPS = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mul",
    ast.FloorDiv: "floordiv", ast.Mod: "mod",
}


class PyLiteSyntaxError(ReproError):
    """Source uses a construct outside the PyLite subset."""

    def __init__(self, message: str, node: Optional[ast.AST] = None):
        line = getattr(node, "lineno", None)
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


def _fail(message: str, node: Optional[ast.AST] = None) -> None:
    raise PyLiteSyntaxError(message, node)


def _assigned_names(stmts: List[ast.stmt]) -> List[str]:
    """Names bound by assignment/for in ``stmts``, first-binding order."""
    seen: List[str] = []

    def record(name: str) -> None:
        if name not in seen:
            seen.append(name)

    for node in ast.walk(ast.Module(body=stmts, type_ignores=[])):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    record(target.id)
        elif isinstance(node, ast.For) and isinstance(node.target, ast.Name):
            record(node.target.id)
    return seen


class _Lowerer:
    """Lowers one function body (or the module body) to TAC."""

    def __init__(
        self,
        name: str,
        params: List[str],
        body: List[ast.stmt],
        functions: Dict[str, List[str]],
        global_names: List[str],
        is_main: bool,
    ):
        self.name = name
        self.params = params
        self.functions = functions
        self.global_names = global_names
        self.is_main = is_main
        self.body = body
        self.instrs: List[TacInstr] = []
        self._next_temp = 0
        self.local_slots: Dict[str, int] = {}
        self._bound_locals: Set[str] = set(params)
        self._line = 0
        #: (continue target label, break target label) stack.
        self._loops: List[Tuple[object, object]] = []
        self._labels: Dict[int, Optional[int]] = {}
        self._next_label = 0
        self.coverable: Set[int] = set()
        if not is_main:
            for param in params:
                self.local_slots[param] = self._temp()
            for local in _assigned_names(body):
                if local not in self.local_slots:
                    self.local_slots[local] = self._temp()

    # -- plumbing -------------------------------------------------------------

    def _temp(self) -> int:
        index = self._next_temp
        self._next_temp += 1
        return index

    def _label(self) -> int:
        label = self._next_label
        self._next_label += 1
        self._labels[label] = None
        return label

    def _place(self, label: int) -> None:
        assert self._labels[label] is None, "label placed twice"
        self._labels[label] = len(self.instrs)

    def _emit(self, op, dst=None, a=None, b=None, extra=None, args=None) -> TacInstr:
        instr = TacInstr(op, dst=dst, a=a, b=b, extra=extra, args=args,
                         line=self._line)
        self.instrs.append(instr)
        return instr

    def _mark(self, node: ast.stmt, kind: str) -> None:
        self._line = node.lineno
        self.coverable.add(node.lineno)
        self._emit(tac.LINE, a=node.lineno, b=STMT_KINDS[kind])

    # -- names ----------------------------------------------------------------

    def _load_name(self, node: ast.Name) -> int:
        name = node.id
        if not self.is_main and name in self.local_slots:
            slot = self.local_slots[name]
            if name not in self._bound_locals:
                self._emit(tac.CHK, a=slot, extra=name)
            return slot
        if name in self.functions:
            _fail(f"function {name!r} used as a value", node)
        if name in BUILTIN_ARITY or name in EXC_IDS or name == "range":
            _fail(f"{name!r} may only be called", node)
        if name not in self.global_names:
            self.global_names.append(name)
        dst = self._temp()
        self._emit(tac.GLOAD, dst=dst, extra=name)
        return dst

    def _store_name(self, name: str, value: int, node: ast.AST) -> None:
        if name in self.functions or name in BUILTIN_ARITY or name == "range":
            _fail(f"cannot assign to {name!r}", node)
        if not self.is_main and name in self.local_slots:
            # Deliberately does NOT mark the local as bound: straight-line
            # tracking would be unsound for conditionally-bound locals
            # (``if c: x = 1`` then a read of ``x``), so only parameters
            # ever skip the CHK guard.
            self._emit(tac.MOVE, dst=self.local_slots[name], a=value)
            return
        if name not in self.global_names:
            self.global_names.append(name)
        self._emit(tac.GSTORE, a=value, extra=name)

    # -- expressions ----------------------------------------------------------

    def _expr(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant):
            return self._constant(node)
        if isinstance(node, ast.Name):
            return self._load_name(node)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                _fail("true division '/' is outside PyLite; use '//'", node)
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                _fail(f"operator {type(node.op).__name__} is outside PyLite", node)
            a = self._expr(node.left)
            b = self._expr(node.right)
            dst = self._temp()
            self._emit(tac.BIN, dst=dst, a=a, b=b, extra=op)
            return dst
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                a = self._expr(node.operand)
                dst = self._temp()
                self._emit(tac.UN, dst=dst, a=a, extra="neg")
                return dst
            if isinstance(node.op, ast.Not):
                a = self._expr(node.operand)
                dst = self._temp()
                self._emit(tac.UN, dst=dst, a=a, extra="not")
                return dst
            _fail(f"unary {type(node.op).__name__} is outside PyLite", node)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node)
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            obj = self._expr(node.value)
            idx = self._expr(node.slice)
            dst = self._temp()
            self._emit(tac.INDEX, dst=dst, a=obj, b=idx)
            return dst
        if isinstance(node, ast.List):
            elems = [self._expr(elt) for elt in node.elts]
            dst = self._temp()
            self._emit(tac.LIST, dst=dst, args=elems)
            return dst
        if isinstance(node, ast.Dict):
            args: List[int] = []
            for key, value in zip(node.keys, node.values):
                if key is None:
                    _fail("dict unpacking is outside PyLite", node)
                args.append(self._expr(key))
                args.append(self._expr(value))
            dst = self._temp()
            self._emit(tac.DICT, dst=dst, args=args)
            return dst
        _fail(f"{type(node).__name__} expressions are outside PyLite", node)

    def _constant(self, node: ast.Constant) -> int:
        value = node.value
        dst = self._temp()
        if value is None:
            self._emit(tac.NONE, dst=dst)
        elif isinstance(value, bool):
            self._emit(tac.CONST, dst=dst, a=int(value))
        elif isinstance(value, int):
            self._emit(tac.CONST, dst=dst, a=value)
        elif isinstance(value, str):
            self._emit(tac.STR, dst=dst, extra=value)
        else:
            _fail(f"{type(value).__name__} literals are outside PyLite", node)
        return dst

    def _boolop(self, node: ast.BoolOp) -> int:
        """Short-circuit with CPython value semantics (result is an operand)."""
        result = self._temp()
        done = self._label()
        last = len(node.values) - 1
        for i, operand in enumerate(node.values):
            value = self._expr(operand)
            self._emit(tac.MOVE, dst=result, a=value)
            if i == last:
                break
            keep_going = self._label()
            if isinstance(node.op, ast.And):
                self._emit(tac.CJMP, a=result, b=keep_going, extra=done)
            else:
                self._emit(tac.CJMP, a=result, b=done, extra=keep_going)
            self._place(keep_going)
        self._place(done)
        return result

    def _compare(self, node: ast.Compare) -> int:
        if len(node.ops) != 1:
            _fail("chained comparisons are outside PyLite", node)
        op = node.ops[0]
        left = self._expr(node.left)
        right = self._expr(node.comparators[0])
        dst = self._temp()
        if isinstance(op, (ast.In, ast.NotIn)):
            self._emit(tac.BUILTIN, dst=dst, extra="contains", args=[right, left])
            if isinstance(op, ast.NotIn):
                inverted = self._temp()
                self._emit(tac.UN, dst=inverted, a=dst, extra="not")
                return inverted
            return dst
        name = _CMP_OPS.get(type(op))
        if name is None:
            _fail(f"comparison {type(op).__name__} is outside PyLite", node)
        self._emit(tac.BIN, dst=dst, a=left, b=right, extra=name)
        return dst

    def _call(self, node: ast.Call) -> int:
        if node.keywords:
            _fail("keyword arguments are outside PyLite", node)
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr != "append":
                _fail(f"method .{func.attr}() is outside PyLite "
                      "(only list.append)", node)
            if len(node.args) != 1:
                _fail("append() takes exactly one argument", node)
            obj = self._expr(func.value)
            value = self._expr(node.args[0])
            dst = self._temp()
            self._emit(tac.BUILTIN, dst=dst, extra="append", args=[obj, value])
            return dst
        if not isinstance(func, ast.Name):
            _fail("only plain-name calls are in PyLite", node)
        name = func.id
        if name == "range":
            _fail("range() is only valid as a for-loop iterable", node)
        if name in EXC_IDS:
            _fail(f"{name}() may only appear in a raise statement", node)
        if name in self.functions:
            params = self.functions[name]
            if len(node.args) != len(params):
                _fail(f"{name}() takes {len(params)} arguments, "
                      f"got {len(node.args)}", node)
            args = [self._expr(arg) for arg in node.args]
            dst = self._temp()
            self._emit(tac.CALL, dst=dst, extra=name, args=args)
            return dst
        if name in BUILTIN_ARITY:
            lo, hi = BUILTIN_ARITY[name]
            if not lo <= len(node.args) <= hi:
                _fail(f"{name}() takes {lo}..{hi} arguments, "
                      f"got {len(node.args)}", node)
            args = [self._expr(arg) for arg in node.args]
            if name == "sym_int":
                # fill the default domain: sym_int(seed, lo=0, hi=255)
                while len(args) < 3:
                    temp = self._temp()
                    self._emit(tac.CONST, dst=temp, a=0 if len(args) == 1 else 255)
                    args.append(temp)
            dst = self._temp()
            self._emit(tac.BUILTIN, dst=dst, extra=name, args=args)
            return dst
        _fail(f"call to unknown function {name!r}", node)

    # -- statements -----------------------------------------------------------

    def lower_body(self) -> TacFunction:
        for stmt in self.body:
            self._stmt(stmt)
        none = self._temp()
        self._emit(tac.NONE, dst=none)
        self._emit(tac.RET, a=none)
        self._resolve_labels()
        return TacFunction(
            name=self.name,
            params=list(self.params),
            n_temps=self._next_temp,
            instrs=self.instrs,
            local_slots=dict(self.local_slots),
        )

    def _resolve_labels(self) -> None:
        targets = {}
        for label, index in self._labels.items():
            assert index is not None, f"label {label} never placed"
            targets[label] = index
        for instr in self.instrs:
            if instr.op == tac.JMP:
                instr.extra = targets[instr.extra]
            elif instr.op == tac.CJMP:
                instr.b = targets[instr.b]
                instr.extra = targets[instr.extra]

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant):
                return  # docstrings / bare literals compile to nothing
            self._mark(node, "expr")
            self._expr(node.value)
            return
        if isinstance(node, ast.Assign):
            self._assign(node)
            return
        if isinstance(node, ast.AugAssign):
            self._aug_assign(node)
            return
        if isinstance(node, ast.If):
            self._if(node)
            return
        if isinstance(node, ast.While):
            self._while(node)
            return
        if isinstance(node, ast.For):
            self._for(node)
            return
        if isinstance(node, ast.Return):
            if self.is_main:
                _fail("'return' outside function", node)
            self._mark(node, "return")
            value = self._expr(node.value) if node.value is not None else None
            if value is None:
                value = self._temp()
                self._emit(tac.NONE, dst=value)
            self._emit(tac.RET, a=value)
            return
        if isinstance(node, ast.Assert):
            self._assert(node)
            return
        if isinstance(node, ast.Raise):
            self._raise(node)
            return
        if isinstance(node, ast.Break):
            if not self._loops:
                _fail("'break' outside loop", node)
            self._mark(node, "break")
            self._emit(tac.JMP, extra=self._loops[-1][1])
            return
        if isinstance(node, ast.Continue):
            if not self._loops:
                _fail("'continue' outside loop", node)
            self._mark(node, "continue")
            self._emit(tac.JMP, extra=self._loops[-1][0])
            return
        if isinstance(node, ast.Pass):
            self._mark(node, "pass")
            return
        if isinstance(node, ast.FunctionDef):
            _fail("nested function definitions are outside PyLite", node)
        _fail(f"{type(node).__name__} statements are outside PyLite", node)

    def _assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            _fail("chained assignment is outside PyLite", node)
        target = node.targets[0]
        self._mark(node, "assign")
        if isinstance(target, ast.Name):
            value = self._expr(node.value)
            self._store_name(target.id, value, node)
            return
        if isinstance(target, ast.Subscript):
            obj = self._expr(target.value)
            idx = self._expr(target.slice)
            value = self._expr(node.value)
            self._emit(tac.SETINDEX, args=[obj, idx, value])
            return
        _fail(f"cannot assign to {type(target).__name__}", node)

    def _aug_assign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Div):
            _fail("true division '/' is outside PyLite; use '//'", node)
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            _fail(f"operator {type(node.op).__name__} is outside PyLite", node)
        target = node.target
        self._mark(node, "assign")
        if isinstance(target, ast.Name):
            current = self._load_name(ast.Name(id=target.id, ctx=ast.Load(),
                                               lineno=node.lineno,
                                               col_offset=node.col_offset))
            value = self._expr(node.value)
            dst = self._temp()
            self._emit(tac.BIN, dst=dst, a=current, b=value, extra=op)
            self._store_name(target.id, dst, node)
            return
        if isinstance(target, ast.Subscript):
            obj = self._expr(target.value)
            idx = self._expr(target.slice)
            current = self._temp()
            self._emit(tac.INDEX, dst=current, a=obj, b=idx)
            value = self._expr(node.value)
            dst = self._temp()
            self._emit(tac.BIN, dst=dst, a=current, b=value, extra=op)
            self._emit(tac.SETINDEX, args=[obj, idx, dst])
            return
        _fail(f"cannot assign to {type(target).__name__}", node)

    def _if(self, node: ast.If) -> None:
        self._mark(node, "if")
        cond = self._expr(node.test)
        then_label = self._label()
        else_label = self._label()
        done = self._label()
        self._emit(tac.CJMP, a=cond, b=then_label, extra=else_label)
        self._place(then_label)
        for stmt in node.body:
            self._stmt(stmt)
        self._emit(tac.JMP, extra=done)
        self._place(else_label)
        for stmt in node.orelse:
            self._stmt(stmt)
        self._place(done)

    def _while(self, node: ast.While) -> None:
        if node.orelse:
            _fail("while/else is outside PyLite", node)
        test = self._label()
        body = self._label()
        done = self._label()
        self._place(test)
        self._mark(node, "while")
        cond = self._expr(node.test)
        self._emit(tac.CJMP, a=cond, b=body, extra=done)
        self._place(body)
        self._loops.append((test, done))
        for stmt in node.body:
            self._stmt(stmt)
        self._loops.pop()
        self._emit(tac.JMP, extra=test)
        self._place(done)

    def _for(self, node: ast.For) -> None:
        if node.orelse:
            _fail("for/else is outside PyLite", node)
        if not isinstance(node.target, ast.Name):
            _fail("for-loop target must be a plain name", node)
        call = node.iter
        if not (isinstance(call, ast.Call) and isinstance(call.func, ast.Name)
                and call.func.id == "range"):
            _fail("for-loops iterate over range(...) only in PyLite", node)
        if call.keywords or not 1 <= len(call.args) <= 3:
            _fail("range() takes 1..3 positional arguments", node)
        self._mark(node, "for")
        step = 1
        if len(call.args) == 3:
            step = self._literal_step(call.args[2])
        if len(call.args) == 1:
            start = self._temp()
            self._emit(tac.CONST, dst=start, a=0)
            stop = self._expr(call.args[0])
        else:
            start = self._expr(call.args[0])
            stop = self._expr(call.args[1])
        step_t = self._temp()
        self._emit(tac.CONST, dst=step_t, a=step)
        counter = self._temp()
        self._emit(tac.MOVE, dst=counter, a=start)
        test = self._label()
        body = self._label()
        incr = self._label()
        done = self._label()
        self._place(test)
        cond = self._temp()
        self._emit(tac.BIN, dst=cond, a=counter, b=stop,
                   extra="lt" if step > 0 else "gt")
        self._emit(tac.CJMP, a=cond, b=body, extra=done)
        self._place(body)
        # The loop variable only binds when the body actually runs —
        # CPython leaves it unbound after a zero-iteration loop.
        self._store_name(node.target.id, counter, node)
        self._loops.append((incr, done))
        for stmt in node.body:
            self._stmt(stmt)
        self._loops.pop()
        self._place(incr)
        bumped = self._temp()
        self._emit(tac.BIN, dst=bumped, a=counter, b=step_t, extra="add")
        self._emit(tac.MOVE, dst=counter, a=bumped)
        self._emit(tac.JMP, extra=test)
        self._place(done)

    def _literal_step(self, node: ast.expr) -> int:
        value = node
        sign = 1
        if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
            sign = -1
            value = value.operand
        if not (isinstance(value, ast.Constant) and isinstance(value.value, int)
                and not isinstance(value.value, bool)):
            _fail("range() step must be a literal integer", node)
        step = sign * value.value
        if step == 0:
            _fail("range() step must not be zero", node)
        return step

    def _assert(self, node: ast.Assert) -> None:
        if node.msg is not None and not isinstance(node.msg, ast.Constant):
            _fail("assert messages must be literals in PyLite", node)
        self._mark(node, "assert")
        cond = self._expr(node.test)
        ok = self._label()
        fail = self._label()
        self._emit(tac.CJMP, a=cond, b=ok, extra=fail)
        self._place(fail)
        self._emit(tac.RAISE, extra="AssertionError")
        self._place(ok)

    def _raise(self, node: ast.Raise) -> None:
        if node.exc is None or node.cause is not None:
            _fail("bare raise / raise-from are outside PyLite", node)
        exc = node.exc
        if isinstance(exc, ast.Call):
            if not isinstance(exc.func, ast.Name):
                _fail("raise takes an exception name", node)
            if exc.keywords or len(exc.args) > 1 or (
                    exc.args and not isinstance(exc.args[0], ast.Constant)):
                _fail("exception arguments must be a single literal", node)
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        else:
            _fail("raise takes an exception name", node)
        if name not in EXC_IDS:
            _fail(f"unknown exception type {name!r}", node)
        self._mark(node, "raise")
        self._emit(tac.RAISE, extra=name)


def lower_module(source: str) -> TacModule:
    """Parse and lower PyLite source; raises :class:`PyLiteSyntaxError`."""
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise PyLiteSyntaxError(f"invalid syntax: {exc.msg}"
                                + (f" (line {exc.lineno})" if exc.lineno else "")
                                ) from exc
    defs: Dict[str, ast.FunctionDef] = {}
    main_body: List[ast.stmt] = []
    for stmt in module.body:
        if isinstance(stmt, ast.FunctionDef):
            if stmt.name in defs:
                _fail(f"duplicate function {stmt.name!r}", stmt)
            if (stmt.args.posonlyargs or stmt.args.kwonlyargs
                    or stmt.args.vararg or stmt.args.kwarg
                    or stmt.args.defaults or stmt.args.kw_defaults):
                _fail("PyLite functions take plain positional parameters "
                      "only", stmt)
            if stmt.decorator_list:
                _fail("decorators are outside PyLite", stmt)
            defs[stmt.name] = stmt
        elif isinstance(stmt, ast.AsyncFunctionDef):
            _fail("async functions are outside PyLite", stmt)
        elif isinstance(stmt, ast.ClassDef):
            _fail("classes are outside PyLite", stmt)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            _fail("imports are outside PyLite", stmt)
        else:
            main_body.append(stmt)
    signatures = {name: [arg.arg for arg in fn.args.args]
                  for name, fn in defs.items()}
    if "main" in signatures:
        _fail("'main' is reserved for the module body", defs["main"])

    global_names: List[str] = _assigned_names(main_body)
    functions: Dict[str, TacFunction] = {}
    coverable: Set[int] = set()

    main = _Lowerer("main", [], main_body, signatures, global_names,
                    is_main=True)
    functions["main"] = main.lower_body()
    coverable |= main.coverable
    for name, fn in defs.items():
        lowerer = _Lowerer(name, signatures[name], fn.body, signatures,
                           global_names, is_main=False)
        functions[name] = lowerer.lower_body()
        coverable |= lowerer.coverable

    return TacModule(
        functions=functions,
        global_names=list(global_names),
        coverable_lines=tuple(sorted(coverable)),
    )


__all__ = ["BUILTIN_ARITY", "PyLiteSyntaxError", "lower_module"]
