"""PyLite frontend: restricted-but-real Python → TAC → CFG → LVM.

This package is the AST→IR lowering pipeline ROADMAP asks for: the stdlib
``ast`` module parses a real Python subset, :mod:`.lower` flattens it to a
~20-opcode three-address IR, :mod:`.cfg` recovers basic blocks, and
:mod:`.emit` walks the blocks emitting LVM bytecode against the
hand-assembled :mod:`.runtime` value library.  The result runs on the
same symbolic executor as the Clay-compiled interpreters — no new engine
code, which is the paper's whole point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.frontend.cfg import Cfg, build_cfg
from repro.frontend.emit import emit_program
from repro.frontend.lower import PyLiteSyntaxError, lower_module
from repro.frontend.tac import TacModule
from repro.lowlevel.program import Program


@dataclass
class CompiledPyLite:
    """A fully lowered PyLite module, ready to build Programs from."""

    source: str
    module: TacModule
    cfgs: Dict[str, Cfg] = field(default_factory=dict)

    @property
    def coverable_lines(self) -> Tuple[int, ...]:
        return self.module.coverable_lines

    def build_program(self) -> Program:
        """A fresh finalized LVM Program (one per Chef run)."""
        return emit_program(self.module)

    def dump_ir(self) -> str:
        return self.module.dump()

    def dump_cfg(self) -> str:
        order = ["main"] + sorted(n for n in self.cfgs if n != "main")
        return "\n\n".join(self.cfgs[name].dump() for name in order)


def compile_pylite(source: str) -> CompiledPyLite:
    """Parse + lower + CFG-build PyLite source (no Program emitted yet)."""
    module = lower_module(source)
    cfgs = {name: build_cfg(fn) for name, fn in module.functions.items()}
    return CompiledPyLite(source=source, module=module, cfgs=cfgs)


__all__ = [
    "CompiledPyLite",
    "PyLiteSyntaxError",
    "compile_pylite",
]
