"""TAC + CFG → LVM ``Program`` emission.

One linear pass per function: TAC temps map 1:1 onto LVM registers, every
CFG block leader gets an LVM label, and each TAC instruction expands to a
handful of LIR instructions (operators become ``CALL``s into the
:mod:`.runtime` library, constants become static-pool box addresses).
The module body compiles to the ``main`` entry (with a ``start_symbolic``
prologue); user functions get a ``py_`` prefix so they can never collide
with runtime routines.
"""

from __future__ import annotations

from typing import Dict, List

from repro.frontend import tac
from repro.frontend.cfg import Cfg, build_cfg
from repro.frontend.runtime import (
    HP_ADDR,
    LINE_ADDR,
    NONE_ADDR,
    TAG_DICT,
    TAG_INT,
    TAG_LIST,
    TAG_NONE,
    TAG_STR,
    build_runtime,
)
from repro.frontend.tac import EXC_IDS, TacFunction, TacModule
from repro.lowlevel import api
from repro.lowlevel.program import FunctionBuilder, Opcode, Program

_BIN_RT = {
    "add": "rt_add", "sub": "rt_sub", "mul": "rt_mul",
    "floordiv": "rt_div", "mod": "rt_mod",
    "eq": "rt_eq", "ne": "rt_ne",
    "lt": "rt_lt", "le": "rt_le", "gt": "rt_gt", "ge": "rt_ge",
}

_UN_RT = {"neg": "rt_neg", "not": "rt_not"}

_BUILTIN_RT = {
    "len": "rt_len", "ord": "rt_ord", "chr": "rt_chr", "print": "rt_print",
    "append": "rt_append", "contains": "rt_contains",
    "sym_string": "rt_sym_string", "sym_int": "rt_sym_int",
    "make_symbolic": "rt_make_symbolic",
}


class StaticPool:
    """Interned constant boxes and global cells for one program image."""

    def __init__(self) -> None:
        #: addr -> words; the None singleton is always at NONE_ADDR.
        self._boxes: Dict[int, List[int]] = {NONE_ADDR: [TAG_NONE]}
        self._next = NONE_ADDR + 1
        self._ints: Dict[int, int] = {}
        self._strs: Dict[str, int] = {}
        self.global_cells: Dict[str, int] = {}

    def _alloc(self, words: List[int]) -> int:
        addr = self._next
        self._boxes[addr] = words
        self._next += len(words)
        return addr

    def int_box(self, value: int) -> int:
        addr = self._ints.get(value)
        if addr is None:
            addr = self._alloc([TAG_INT, value])
            self._ints[value] = addr
        return addr

    def str_box(self, text: str) -> int:
        addr = self._strs.get(text)
        if addr is None:
            for ch in text:
                if ord(ch) > 255:
                    raise ValueError(
                        f"PyLite strings are byte strings; {ch!r} is out of "
                        "range")
            addr = self._alloc([TAG_STR, len(text)] + [ord(c) for c in text])
            self._strs[text] = addr
        return addr

    def global_cell(self, name: str) -> int:
        addr = self.global_cells.get(name)
        if addr is None:
            addr = self._alloc([0])
            self.global_cells[name] = addr
        return addr

    def install(self, program: Program) -> None:
        """Write the pool into static data and point the heap past it."""
        for addr, words in self._boxes.items():
            program.set_static(addr, words)
        program.set_static(LINE_ADDR, [0])
        program.set_static(HP_ADDR, [self._next])


class _FunctionEmitter:
    def __init__(self, fn: TacFunction, cfg: Cfg, pool: StaticPool,
                 lvm_name: str, is_main: bool):
        self.fn = fn
        self.cfg = cfg
        self.pool = pool
        self.builder = FunctionBuilder(lvm_name, n_params=len(fn.params))
        # Reserve one LVM register per TAC temp (params occupy the first).
        while self.builder._next_reg < fn.n_temps:
            self.builder.new_reg()
        self.is_main = is_main
        #: TAC leader index -> LVM label.
        self.block_labels = {
            block.start: self.builder.new_label() for block in cfg.blocks
        }

    def emit(self):
        b = self.builder
        if self.is_main:
            b.emit(Opcode.HYPER, dst=b.new_reg(), extra=api.START_SYMBOLIC,
                   args=[])
        for block in self.cfg.blocks:
            b.place_label(self.block_labels[block.start])
            for index in range(block.start, block.end):
                self._instr(self.fn.instrs[index])
        return b.finish()

    # -- helpers --------------------------------------------------------------

    def _call(self, dst, name: str, args: List[int]) -> None:
        self.builder.emit(Opcode.CALL, dst=dst, extra=name, args=args)

    def _scratch_call(self, name: str, args: List[int]) -> None:
        self._call(self.builder.new_reg(), name, args)

    def _label_of(self, target: int):
        return FunctionBuilder.label_ref(self.block_labels[target])

    # -- per-instruction lowering ---------------------------------------------

    def _instr(self, instr: tac.TacInstr) -> None:
        b = self.builder
        b.set_line(instr.line)
        op = instr.op
        if op == tac.CONST:
            b.emit(Opcode.CONST, dst=instr.dst, a=self.pool.int_box(instr.a))
        elif op == tac.STR:
            b.emit(Opcode.CONST, dst=instr.dst, a=self.pool.str_box(instr.extra))
        elif op == tac.NONE:
            b.emit(Opcode.CONST, dst=instr.dst, a=NONE_ADDR)
        elif op == tac.MOVE:
            b.emit(Opcode.MOVE, dst=instr.dst, a=instr.a)
        elif op == tac.BIN:
            self._call(instr.dst, _BIN_RT[instr.extra], [instr.a, instr.b])
        elif op == tac.UN:
            self._call(instr.dst, _UN_RT[instr.extra], [instr.a])
        elif op == tac.INDEX:
            self._call(instr.dst, "rt_index", [instr.a, instr.b])
        elif op == tac.SETINDEX:
            self._scratch_call("rt_setindex", list(instr.args))
        elif op == tac.LIST:
            self._list(instr)
        elif op == tac.DICT:
            self._dict(instr)
        elif op == tac.CALL:
            self._call(instr.dst, f"py_{instr.extra}", list(instr.args or ()))
        elif op == tac.BUILTIN:
            self._call(instr.dst, _BUILTIN_RT[instr.extra],
                       list(instr.args or ()))
        elif op == tac.GLOAD:
            cell = b.const(self.pool.global_cell(instr.extra))
            value = b.new_reg()
            b.emit(Opcode.LOAD, dst=value, a=cell)
            self._call(instr.dst, "rt_chkname", [value])
        elif op == tac.GSTORE:
            cell = b.const(self.pool.global_cell(instr.extra))
            b.emit(Opcode.STORE, a=cell, b=instr.a)
        elif op == tac.JMP:
            b.emit(Opcode.JMP, a=self._label_of(instr.extra))
        elif op == tac.CJMP:
            truth = b.new_reg()
            self._call(truth, "rt_truth", [instr.a])
            b.emit(Opcode.BR, a=truth, b=self._label_of(instr.b),
                   extra=self._label_of(instr.extra))
        elif op == tac.RET:
            b.emit(Opcode.RET, a=instr.a)
        elif op == tac.LINE:
            line_reg = b.const(instr.a)
            kind_reg = b.const(instr.b)
            b.emit(Opcode.STORE, a=b.const(LINE_ADDR), b=line_reg)
            b.emit(Opcode.HYPER, dst=b.new_reg(), extra=api.LOG_PC,
                   args=[line_reg, kind_reg])
        elif op == tac.CHK:
            self._scratch_call("rt_chklocal", [instr.a])
        elif op == tac.RAISE:
            self._scratch_call("rt_raise", [b.const(EXC_IDS[instr.extra])])
        else:  # pragma: no cover - lowering emits no other ops
            raise AssertionError(f"unhandled TAC op {op!r}")

    def _list(self, instr: tac.TacInstr) -> None:
        b = self.builder
        elems = list(instr.args or ())
        n = len(elems)
        box = b.new_reg()
        self._call(box, "rt_alloc", [b.const(4)])
        storage = b.new_reg()
        self._call(storage, "rt_alloc", [b.const(n)])
        self._store_at(box, 0, b.const(TAG_LIST))
        self._store_at(box, 1, b.const(n))
        self._store_at(box, 2, b.const(n))
        self._store_at(box, 3, storage)
        for i, temp in enumerate(elems):
            self._store_at(storage, i, temp)
        b.emit(Opcode.MOVE, dst=instr.dst, a=box)

    def _dict(self, instr: tac.TacInstr) -> None:
        b = self.builder
        pairs = list(instr.args or ())
        n = len(pairs) // 2
        box = b.new_reg()
        self._call(box, "rt_alloc", [b.const(4)])
        storage = b.new_reg()
        self._call(storage, "rt_alloc", [b.const(2 * n)])
        self._store_at(box, 0, b.const(TAG_DICT))
        self._store_at(box, 1, b.const(0))
        self._store_at(box, 2, b.const(n))
        self._store_at(box, 3, storage)
        b.emit(Opcode.MOVE, dst=instr.dst, a=box)
        # Route every pair through rt_dput so duplicate literal keys
        # collapse exactly like CPython ({'a': 1, 'a': 2} == {'a': 2}).
        for i in range(n):
            self._scratch_call("rt_dput", [instr.dst, pairs[2 * i],
                                           pairs[2 * i + 1]])

    def _store_at(self, base_reg: int, offset: int, value_reg: int) -> None:
        b = self.builder
        if offset:
            addr = b.new_reg()
            b.emit(Opcode.BIN, dst=addr, a=base_reg, b=b.const(offset),
                   extra="add")
        else:
            addr = base_reg
        b.emit(Opcode.STORE, a=addr, b=value_reg)


def emit_program(module: TacModule) -> Program:
    """Compile a lowered module into a finalized, runnable Program."""
    pool = StaticPool()
    program = Program(entry="main")
    for cell_owner in module.global_names:
        pool.global_cell(cell_owner)
    for name, fn in module.functions.items():
        lvm_name = "main" if name == "main" else f"py_{name}"
        emitter = _FunctionEmitter(fn, build_cfg(fn), pool, lvm_name,
                                   is_main=name == "main")
        program.add_function(emitter.emit())
    for runtime_fn in build_runtime():
        program.add_function(runtime_fn)
    pool.install(program)
    program.finalize()
    return program


__all__ = ["StaticPool", "emit_program"]
