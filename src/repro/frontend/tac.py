"""Three-address IR for the PyLite frontend.

The lowering pipeline is ``ast`` → TAC → CFG → LIR: :mod:`.lower` flattens
the Python AST into these instructions, :mod:`.cfg` recovers basic blocks,
and :mod:`.emit` walks the blocks emitting LVM bytecode.  The opcode set is
deliberately small (~20 ops, the red-dragon shape from ROADMAP) and every
operand is a temp index, so the emitter is a single linear pass.

Temps ``0..len(params)-1`` are the function parameters; named locals get
dedicated temps after the parameters; expression temps follow.  Jump
targets (``JMP.target``, ``CJMP.on_true``/``on_false``) are instruction
indices within the owning function — :func:`TacFunction.dump` renders them
as ``@N`` so golden tests pin the exact flattened shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# -- opcodes ------------------------------------------------------------------

CONST = "const"        # dst <- int immediate
STR = "str"            # dst <- string constant (extra)
NONE = "none"          # dst <- None
MOVE = "move"          # dst <- temp a
BIN = "bin"            # dst <- a <extra> b   (add sub mul floordiv mod
                       #                       eq ne lt le gt ge)
UN = "un"              # dst <- <extra> a     (neg, not)
INDEX = "index"        # dst <- a[b]
SETINDEX = "setindex"  # args[0][args[1]] <- args[2]
LIST = "list"          # dst <- [args...]
DICT = "dict"          # dst <- {args[0]: args[1], args[2]: args[3], ...}
CALL = "call"          # dst <- extra(args...)        user function
BUILTIN = "builtin"    # dst <- extra(args...)        runtime builtin
GLOAD = "gload"        # dst <- global <extra>
GSTORE = "gstore"      # global <extra> <- temp a
JMP = "jmp"            # goto instruction index target
CJMP = "cjmp"          # if truthy(a) goto on_true else on_false
RET = "ret"            # return temp a
LINE = "line"          # statement boundary: lineno a, statement kind b
CHK = "chk"            # raise UnboundLocalError if temp a is unassigned
RAISE = "raise"        # raise exception type <extra>

OPCODES = (
    CONST, STR, NONE, MOVE, BIN, UN, INDEX, SETINDEX, LIST, DICT, CALL,
    BUILTIN, GLOAD, GSTORE, JMP, CJMP, RET, LINE, CHK, RAISE,
)

#: ops that unconditionally transfer control (end a basic block with no
#: fall-through successor).
TERMINATORS = (JMP, RET, RAISE)

#: statement kinds carried by LINE (the ``opcode`` operand of ``log_pc``).
STMT_KINDS = {
    "assign": 1, "if": 2, "while": 3, "for": 4, "expr": 5, "return": 6,
    "assert": 7, "raise": 8, "break": 9, "continue": 10, "pass": 11,
}

#: PyLite exception type ids.  The builtin block matches MiniPy's table
#: (interpreters/minipy/bytecode.py) so scenario packs and documented
#: exception names stay comparable across guests.
EXC_IDS: Dict[str, int] = {
    "Exception": 1,
    "ValueError": 2,
    "TypeError": 3,
    "KeyError": 4,
    "IndexError": 5,
    "AssertionError": 6,
    "ZeroDivisionError": 7,
    "RuntimeError": 8,
    "StopIteration": 9,
    "NameError": 10,
    "UnboundLocalError": 11,
}

EXC_NAMES: Dict[int, str] = {v: k for k, v in EXC_IDS.items()}


@dataclass
class TacInstr:
    """One TAC instruction; operand meaning depends on ``op``."""

    op: str
    dst: Optional[int] = None
    a: Optional[int] = None
    b: Optional[int] = None
    extra: object = None
    args: Optional[List[int]] = None
    line: int = 0

    def render(self) -> str:
        op = self.op
        if op == CONST:
            return f"t{self.dst} = {self.a}"
        if op == STR:
            return f"t{self.dst} = {self.extra!r}"
        if op == NONE:
            return f"t{self.dst} = None"
        if op == MOVE:
            return f"t{self.dst} = t{self.a}"
        if op == BIN:
            return f"t{self.dst} = t{self.a} {self.extra} t{self.b}"
        if op == UN:
            return f"t{self.dst} = {self.extra} t{self.a}"
        if op == INDEX:
            return f"t{self.dst} = t{self.a}[t{self.b}]"
        if op == SETINDEX:
            obj, idx, val = self.args
            return f"t{obj}[t{idx}] = t{val}"
        if op == LIST:
            elems = ", ".join(f"t{t}" for t in self.args or ())
            return f"t{self.dst} = [{elems}]"
        if op == DICT:
            pairs = self.args or ()
            body = ", ".join(
                f"t{pairs[i]}: t{pairs[i + 1]}" for i in range(0, len(pairs), 2)
            )
            return f"t{self.dst} = {{{body}}}"
        if op in (CALL, BUILTIN):
            argl = ", ".join(f"t{t}" for t in self.args or ())
            return f"t{self.dst} = {self.extra}({argl})"
        if op == GLOAD:
            return f"t{self.dst} = global {self.extra}"
        if op == GSTORE:
            return f"global {self.extra} = t{self.a}"
        if op == JMP:
            return f"jmp @{self.extra}"
        if op == CJMP:
            return f"if t{self.a} jmp @{self.b} else @{self.extra}"
        if op == RET:
            return f"ret t{self.a}"
        if op == LINE:
            return f"line {self.a} kind={self.b}"
        if op == CHK:
            return f"chk t{self.a} ({self.extra})"
        if op == RAISE:
            return f"raise {self.extra}"
        raise AssertionError(f"unknown TAC op {op!r}")


@dataclass
class TacFunction:
    """A lowered function: flat instruction list plus temp bookkeeping."""

    name: str
    params: List[str]
    n_temps: int
    instrs: List[TacInstr] = field(default_factory=list)
    #: temps holding named locals (name -> temp index), params included.
    local_slots: Dict[str, int] = field(default_factory=dict)

    def dump(self) -> str:
        header = f"func {self.name}({', '.join(self.params)}) temps={self.n_temps}"
        body = "\n".join(
            f"  {i:3d}: {instr.render()}" for i, instr in enumerate(self.instrs)
        )
        return f"{header}\n{body}" if body else header


@dataclass
class TacModule:
    """A lowered module: ``main`` (module body) plus user functions."""

    functions: Dict[str, TacFunction]
    #: module-level names, in first-binding order (become global cells).
    global_names: List[str]
    #: every source line that owns a LINE marker (coverable set).
    coverable_lines: Tuple[int, ...]

    def dump(self) -> str:
        order = ["main"] + sorted(n for n in self.functions if n != "main")
        return "\n\n".join(self.functions[name].dump() for name in order)


__all__ = [
    "BIN", "BUILTIN", "CALL", "CHK", "CJMP", "CONST", "DICT", "EXC_IDS",
    "EXC_NAMES", "GLOAD", "GSTORE", "INDEX", "JMP", "LINE", "LIST", "MOVE",
    "NONE", "OPCODES", "RAISE", "RET", "SETINDEX", "STMT_KINDS", "STR",
    "TERMINATORS", "TacFunction", "TacInstr", "TacModule", "UN",
]
