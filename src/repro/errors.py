"""Exception hierarchy shared across the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch library failures without accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SolverError(ReproError):
    """Raised when the constraint solver is misused or fails internally."""


class SolverTimeout(SolverError):
    """Raised when a solver query exceeds its search budget.

    The paper treats queries the solver cannot decide as a completeness
    caveat; the engine converts this into a discarded state.
    """


class SolverDeadline(SolverTimeout):
    """Raised when a solver query exceeds its wall-clock deadline.

    A subclass of :class:`SolverTimeout` so every existing handler
    degrades it to ``unknown``; kept distinct so deadline expiries are
    counted separately (``solver.deadline_unknowns``) from step-budget
    exhaustion — a wedged backend and a hard query are different
    operational problems.
    """


class MachineError(ReproError):
    """Raised for faults inside the low-level virtual machine (LVM)."""


class GuestFault(MachineError):
    """A guest program performed an illegal operation (bad memory access,
    division by zero with concrete operands, stack overflow, ...)."""


class ClayError(ReproError):
    """Base class for errors from the Clay language toolchain."""


class ClaySyntaxError(ClayError):
    """Raised by the Clay lexer/parser on malformed source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class ClayCompileError(ClayError):
    """Raised by the Clay code generator (undefined names, arity errors)."""


class InterpreterError(ReproError):
    """Base class for the MiniPy/MiniLua host toolchains."""


class MiniLangSyntaxError(InterpreterError):
    """Malformed MiniPy/MiniLua source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class MiniLangCompileError(InterpreterError):
    """Semantic error while compiling MiniPy/MiniLua to bytecode."""


class HostVMError(InterpreterError):
    """Raised by the host reference interpreters on internal faults."""


class ChefError(ReproError):
    """Raised by the Chef engine for configuration/usage errors."""


class ReplayMismatchError(ReproError):
    """A replayed test case diverged from the behaviour recorded during
    symbolic execution (used by differential testing, §6.6)."""
