"""The three PyLite scenario packages (frontend counterpart of Table 3).

Each ``*_SOURCE`` constant is real Python inside the PyLite subset — it
runs unchanged under CPython (the differential oracle) *and* compiles
through the frontend onto the LVM.  The pack covers the ROADMAP scenario
shapes: a string parser, a state machine and a codec.  ``*_TEST`` is the
declarative symbolic-test spec consumed by :class:`SimpleSymbolicTest`.
"""

PARSEINT_SOURCE = '''
# mini-int-parser: sign handling plus a digit loop.
# Documented exceptions: ValueError.

def parse_int(text):
    if len(text) == 0:
        raise ValueError("empty input")
    sign = 1
    start = 0
    if text[0] == "-":
        sign = -1
        start = 1
        if len(text) == 1:
            raise ValueError("sign without digits")
    value = 0
    for i in range(start, len(text)):
        d = ord(text[i])
        if d < 48:
            raise ValueError("not a digit")
        if d > 57:
            raise ValueError("not a digit")
        value = value * 10 + (d - 48)
    return sign * value
'''

PARSEINT_TEST = {
    "inputs": [("str", "cmd", "42")],
    "body": "n = parse_int(cmd)\nprint(n)",
}

TURNSTILE_SOURCE = '''
# turnstile state machine: coins unlock, pushes enter, invariant audited.
# Documented exceptions: RuntimeError.

def new_turnstile():
    m = {}
    m["state"] = "locked"
    m["coins"] = 0
    m["entries"] = 0
    return m

def step(m, cmd):
    if cmd == "c":
        m["coins"] = m["coins"] + 1
        m["state"] = "open"
    elif cmd == "p":
        if m["state"] == "open":
            m["entries"] = m["entries"] + 1
            m["state"] = "locked"
    else:
        raise RuntimeError("unknown command")
    return m

def run_machine(cmds):
    m = new_turnstile()
    for i in range(len(cmds)):
        m = step(m, cmds[i])
        assert m["entries"] <= m["coins"]
    return m
'''

TURNSTILE_TEST = {
    "inputs": [("str", "cmds", "cp")],
    "body": 'm = run_machine(cmds)\nprint(m["entries"])',
}

RLE_SOURCE = '''
# run-length codec with an audited round-trip.
# Documented exceptions: ValueError.

def rle_encode(text):
    runs = []
    i = 0
    while i < len(text):
        ch = text[i]
        n = 1
        while i + n < len(text) and text[i + n] == ch:
            n = n + 1
        runs.append(ord(ch))
        runs.append(n)
        i = i + n
    return runs

def rle_decode(runs):
    out = ""
    i = 0
    while i < len(runs):
        ch = chr(runs[i])
        n = runs[i + 1]
        for j in range(n):
            out = out + ch
        i = i + 2
    return out

def roundtrip(text):
    runs = rle_encode(text)
    decoded = rle_decode(runs)
    assert decoded == text
    return len(runs) // 2
'''

RLE_TEST = {
    "inputs": [("str", "data", "aa")],
    "body": "k = roundtrip(data)\nprint(k)",
}
