"""The five MiniLua testing targets (Table 3, Lua half).

``JSON_SOURCE`` carries the paper's §6.2 bug faithfully: a ``/*`` comment
with no matching ``*/`` makes the tokenizer spin without advancing, an
infinite loop that Chef's per-path budget flags as a hang.
"""

CLIARGS_SOURCE = '''
-- mini-cliargs: command-line argument parser.

function split_flag(arg)
    local eq = string.find(arg, "=")
    if eq == nil then
        return {arg, nil}
    end
    return {string.sub(arg, 1, eq - 1), string.sub(arg, eq + 1, string.len(arg))}
end

function parse_args(args)
    local result = {}
    local positional = 0
    local i = 1
    while i <= #args do
        local arg = args[i]
        if string.sub(arg, 1, 2) == "--" then
            local pair = split_flag(string.sub(arg, 3, string.len(arg)))
            local key = pair[1]
            if string.len(key) == 0 then
                error("empty flag name")
            end
            if pair[2] == nil then
                result[key] = true
            else
                result[key] = pair[2]
            end
        elseif string.sub(arg, 1, 1) == "-" then
            local key = string.sub(arg, 2, string.len(arg))
            if string.len(key) ~= 1 then
                error("short flags are single characters")
            end
            result[key] = true
        else
            positional = positional + 1
            result[positional] = arg
        end
        i = i + 1
    end
    return result
end
'''

CLIARGS_TEST = {
    "inputs": [("str", "a1", "\x00\x00\x00\x00")],
    "body": """
local parsed = parse_args({a1})
print(1)
""",
}


HAML_SOURCE = '''
-- mini-haml: HTML description markup (a HAML-like line language).

function render_line(line)
    local first = string.sub(line, 1, 1)
    if first == "%" then
        local sp = string.find(line, " ")
        local tag = ""
        local content = ""
        if sp == nil then
            tag = string.sub(line, 2, string.len(line))
        else
            tag = string.sub(line, 2, sp - 1)
            content = string.sub(line, sp + 1, string.len(line))
        end
        if string.len(tag) == 0 then
            error("empty tag name")
        end
        return "<" .. tag .. ">" .. content .. "</" .. tag .. ">"
    elseif first == "." then
        local cls = string.sub(line, 2, string.len(line))
        return "<div class=" .. cls .. "></div>"
    elseif first == "/" then
        return "<!-- " .. string.sub(line, 2, string.len(line)) .. " -->"
    end
    return line
end

function render(text)
    local out = ""
    local start = 1
    local n = string.len(text)
    local i = 1
    while i <= n + 1 do
        local at_end = i == n + 1
        local brk = false
        if at_end then
            brk = true
        elseif string.sub(text, i, i) == "\\n" then
            brk = true
        end
        if brk then
            local line = string.sub(text, start, i - 1)
            if string.len(line) > 0 then
                out = out .. render_line(line)
            end
            start = i + 1
        end
        i = i + 1
    end
    return out
end
'''

HAML_TEST = {
    "inputs": [("str", "doc", "%p hi\x00\x00")],
    "body": """
local html = render(doc)
print(string.len(html))
""",
}


JSON_SOURCE = '''
-- mini sb-JSON: JSON format parser for Lua.
-- Carries the comment-handling bug the paper found (§6.2): comments are
-- not part of JSON, the parser accepts them "for convenience", and an
-- unterminated /* comment makes the scanner spin forever.

function skip_space(s, pos)
    local n = string.len(s)
    while pos <= n do
        local c = string.sub(s, pos, pos)
        if c == " " or c == "\\t" or c == "\\n" then
            pos = pos + 1
        elseif string.sub(s, pos, pos + 1) == "/*" then
            local close = nil
            local j = pos + 2
            while j <= n - 1 do
                if string.sub(s, j, j + 1) == "*/" then
                    close = j
                    break
                end
                j = j + 1
            end
            if close == nil then
                -- BUG: unterminated comment; pos is not advanced, so the
                -- loop keeps rescanning the same comment forever.
                pos = pos
            else
                pos = close + 2
            end
        elseif string.sub(s, pos, pos + 1) == "//" then
            local nl = nil
            local j = pos + 2
            while j <= n do
                if string.sub(s, j, j) == "\\n" then
                    nl = j
                    break
                end
                j = j + 1
            end
            if nl == nil then
                -- Same bug for line comments with no terminator.
                pos = pos
            else
                pos = nl + 1
            end
        else
            break
        end
    end
    return pos
end

function parse_value(s, pos)
    pos = skip_space(s, pos)
    local n = string.len(s)
    if pos > n then
        error("unexpected end of JSON input")
    end
    local c = string.sub(s, pos, pos)
    if c == "[" then
        return parse_array(s, pos)
    end
    if c == "\\"" then
        return parse_string(s, pos)
    end
    if string.sub(s, pos, pos + 3) == "true" then
        return {true, pos + 4}
    end
    if string.sub(s, pos, pos + 4) == "false" then
        return {false, pos + 5}
    end
    if string.sub(s, pos, pos + 3) == "null" then
        return {nil, pos + 4}
    end
    return parse_number(s, pos)
end

function parse_string(s, pos)
    local n = string.len(s)
    local out = ""
    local i = pos + 1
    while i <= n do
        local c = string.sub(s, i, i)
        if c == "\\"" then
            return {out, i + 1}
        end
        out = out .. c
        i = i + 1
    end
    error("unterminated string")
end

function parse_number(s, pos)
    local n = string.len(s)
    local i = pos
    local value = 0
    local digits = 0
    local neg = false
    if string.sub(s, i, i) == "-" then
        neg = true
        i = i + 1
    end
    while i <= n do
        local c = string.sub(s, i, i)
        local b = string.byte(c, 1)
        if b >= 48 and b <= 57 then
            value = value * 10 + (b - 48)
            digits = digits + 1
            i = i + 1
        else
            break
        end
    end
    if digits == 0 then
        error("bad number in JSON")
    end
    if neg then
        value = 0 - value
    end
    return {value, i}
end

function parse_array(s, pos)
    local items = {}
    local count = 0
    pos = skip_space(s, pos + 1)
    if string.sub(s, pos, pos) == "]" then
        return {items, pos + 1}
    end
    while true do
        local pair = parse_value(s, pos)
        count = count + 1
        items[count] = pair[1]
        pos = skip_space(s, pair[2])
        local c = string.sub(s, pos, pos)
        if c == "]" then
            return {items, pos + 1}
        end
        if c ~= "," then
            error("expected comma in array")
        end
        pos = pos + 1
    end
end

function decode(s)
    local pair = parse_value(s, 1)
    return pair[1]
end
'''

JSON_TEST = {
    "inputs": [("str", "doc", "[1]\x00\x00\x00")],
    "body": """
local v = decode(doc)
print(1)
""",
}


MARKDOWN_SOURCE = '''
-- mini-markdown: text-to-HTML conversion.

function convert_line(line)
    local n = string.len(line)
    if n == 0 then
        return ""
    end
    local level = 0
    local i = 1
    while i <= n do
        if string.sub(line, i, i) == "#" then
            level = level + 1
            i = i + 1
        else
            break
        end
    end
    if level > 0 and level <= 6 then
        local rest = string.sub(line, level + 1, n)
        if string.sub(rest, 1, 1) == " " then
            local h = tostring(level)
            return "<h" .. h .. ">" .. string.sub(rest, 2, string.len(rest)) .. "</h" .. h .. ">"
        end
    end
    if string.sub(line, 1, 2) == "- " then
        return "<li>" .. string.sub(line, 3, n) .. "</li>"
    end
    if string.sub(line, 1, 1) == ">" then
        return "<blockquote>" .. string.sub(line, 2, n) .. "</blockquote>"
    end
    return "<p>" .. emphasis(line) .. "</p>"
end

function emphasis(text)
    local out = ""
    local n = string.len(text)
    local i = 1
    local open = false
    while i <= n do
        local c = string.sub(text, i, i)
        if c == "*" then
            if open then
                out = out .. "</em>"
                open = false
            else
                out = out .. "<em>"
                open = true
            end
        else
            out = out .. c
        end
        i = i + 1
    end
    if open then
        error("unbalanced emphasis marker")
    end
    return out
end
'''

MARKDOWN_TEST = {
    "inputs": [("str", "text", "# h\x00\x00\x00")],
    "body": """
local html = convert_line(text)
print(string.len(html))
""",
}


MOONSCRIPT_SOURCE = '''
-- mini-moonscript: a tiny indentation language that compiles to Lua text.

function compile_expr(expr)
    if string.len(expr) == 0 then
        error("empty expression")
    end
    local bang = string.find(expr, "!")
    if bang ~= nil then
        local name = string.sub(expr, 1, bang - 1)
        if string.len(name) == 0 then
            error("missing function name before !")
        end
        return name .. "()"
    end
    return expr
end

function compile_line(line)
    local n = string.len(line)
    if string.sub(line, 1, 3) == "if " then
        return "if " .. compile_expr(string.sub(line, 4, n)) .. " then"
    end
    if line == "else" then
        return "else"
    end
    if string.sub(line, 1, 7) == "return " then
        return "return " .. compile_expr(string.sub(line, 8, n))
    end
    local eq = string.find(line, "=")
    if eq ~= nil then
        local name = string.sub(line, 1, eq - 1)
        local value = string.sub(line, eq + 1, n)
        if string.len(name) == 0 then
            error("assignment without target")
        end
        return "local " .. name .. " = " .. compile_expr(value)
    end
    return compile_expr(line)
end

function compile_chunk(text)
    local out = ""
    local start = 1
    local n = string.len(text)
    local depth = 0
    local i = 1
    while i <= n + 1 do
        local brk = false
        if i == n + 1 then
            brk = true
        elseif string.sub(text, i, i) == ";" then
            brk = true
        end
        if brk then
            local line = string.sub(text, start, i - 1)
            if string.len(line) > 0 then
                local compiled = compile_line(line)
                if string.sub(compiled, 1, 2) == "if" then
                    depth = depth + 1
                end
                out = out .. compiled .. "\\n"
            end
            start = i + 1
        end
        i = i + 1
    end
    while depth > 0 do
        out = out .. "end\\n"
        depth = depth - 1
    end
    return out
end
'''

MOONSCRIPT_TEST = {
    "inputs": [("str", "prog", "x=1\x00\x00\x00")],
    "body": """
local lua = compile_chunk(prog)
print(string.len(lua))
""",
}
