"""Registry of the testing targets (11 Table 3 rows + the PyLite pack).

The *documented* exception classification follows the paper exactly
(§6.2): an exception is documented if the package's documentation names
it, or it is one of the common stdlib exceptions KeyError, ValueError and
TypeError.  Anything else (including IndexError) counts as undocumented.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Tuple

from repro.api.language import get_language
from repro.symtest.library import SimpleSymbolicTest
from repro.targets import minilua_packages as LUA
from repro.targets import minipy_packages as PY
from repro.targets import pylite_packages as PL

#: stdlib exceptions the paper treats as always-documented.
COMMON_DOCUMENTED = frozenset({"KeyError", "ValueError", "TypeError"})


@dataclass(frozen=True)
class TargetPackage:
    """One evaluation target (a row of Table 3)."""

    name: str
    language: str          # a registered guest language name
    ptype: str             # System / Web / Office
    description: str
    source: str
    test_inputs: Tuple[tuple, ...]
    test_body: str
    documented_exceptions: FrozenSet[str] = frozenset()

    def symbolic_test(self) -> SimpleSymbolicTest:
        return SimpleSymbolicTest(
            list(self.test_inputs), self.test_body, language=self.language
        )

    def guest_language(self):
        """The registered :class:`GuestLanguage` this target is written in."""
        return get_language(self.language)

    def loc(self) -> int:
        return self.guest_language().loc(self.source)

    def is_documented(self, exception_name: str) -> bool:
        return (
            exception_name in self.documented_exceptions
            or exception_name in COMMON_DOCUMENTED
        )


@lru_cache(maxsize=None)
def _python_targets() -> Tuple[TargetPackage, ...]:
    return (
        TargetPackage(
            name="argparse",
            language="minipy",
            ptype="System",
            description="Command-line interface",
            source=PY.ARGPARSE_SOURCE,
            test_inputs=tuple(PY.ARGPARSE_TEST["inputs"]),
            test_body=PY.ARGPARSE_TEST["body"],
            documented_exceptions=frozenset({"ArgumentError"}),
        ),
        TargetPackage(
            name="ConfigParser",
            language="minipy",
            ptype="System",
            description="Configuration file parser",
            source=PY.CONFIGPARSER_SOURCE,
            test_inputs=tuple(PY.CONFIGPARSER_TEST["inputs"]),
            test_body=PY.CONFIGPARSER_TEST["body"],
            documented_exceptions=frozenset({"ParsingError"}),
        ),
        TargetPackage(
            name="HTMLParser",
            language="minipy",
            ptype="Web",
            description="HTML parser",
            source=PY.HTMLPARSER_SOURCE,
            test_inputs=tuple(PY.HTMLPARSER_TEST["inputs"]),
            test_body=PY.HTMLPARSER_TEST["body"],
            documented_exceptions=frozenset({"HTMLParseError"}),
        ),
        TargetPackage(
            name="simplejson",
            language="minipy",
            ptype="Web",
            description="JSON format parser",
            source=PY.SIMPLEJSON_SOURCE,
            test_inputs=tuple(PY.SIMPLEJSON_TEST["inputs"]),
            test_body=PY.SIMPLEJSON_TEST["body"],
            documented_exceptions=frozenset({"JSONDecodeError"}),
        ),
        TargetPackage(
            name="unicodecsv",
            language="minipy",
            ptype="Office",
            description="CSV file parser",
            source=PY.UNICODECSV_SOURCE,
            test_inputs=tuple(PY.UNICODECSV_TEST["inputs"]),
            test_body=PY.UNICODECSV_TEST["body"],
            documented_exceptions=frozenset({"CSVError"}),
        ),
        TargetPackage(
            name="xlrd",
            language="minipy",
            ptype="Office",
            description="Microsoft Excel reader",
            source=PY.XLRD_SOURCE,
            test_inputs=tuple(PY.XLRD_TEST["inputs"]),
            test_body=PY.XLRD_TEST["body"],
            documented_exceptions=frozenset({"XLRDError"}),
        ),
    )


@lru_cache(maxsize=None)
def _lua_targets() -> Tuple[TargetPackage, ...]:
    return (
        TargetPackage(
            name="cliargs",
            language="minilua",
            ptype="System",
            description="Command-line interface",
            source=LUA.CLIARGS_SOURCE,
            test_inputs=tuple(LUA.CLIARGS_TEST["inputs"]),
            test_body=LUA.CLIARGS_TEST["body"],
        ),
        TargetPackage(
            name="haml",
            language="minilua",
            ptype="Web",
            description="HTML description markup",
            source=LUA.HAML_SOURCE,
            test_inputs=tuple(LUA.HAML_TEST["inputs"]),
            test_body=LUA.HAML_TEST["body"],
        ),
        TargetPackage(
            name="JSON",
            language="minilua",
            ptype="Web",
            description="JSON format parser",
            source=LUA.JSON_SOURCE,
            test_inputs=tuple(LUA.JSON_TEST["inputs"]),
            test_body=LUA.JSON_TEST["body"],
        ),
        TargetPackage(
            name="markdown",
            language="minilua",
            ptype="Web",
            description="Text-to-HTML conversion",
            source=LUA.MARKDOWN_SOURCE,
            test_inputs=tuple(LUA.MARKDOWN_TEST["inputs"]),
            test_body=LUA.MARKDOWN_TEST["body"],
        ),
        TargetPackage(
            name="moonscript",
            language="minilua",
            ptype="System",
            description="Language that compiles to Lua",
            source=LUA.MOONSCRIPT_SOURCE,
            test_inputs=tuple(LUA.MOONSCRIPT_TEST["inputs"]),
            test_body=LUA.MOONSCRIPT_TEST["body"],
        ),
    )


@lru_cache(maxsize=None)
def _pylite_targets() -> Tuple[TargetPackage, ...]:
    """The frontend scenario pack: parser / state machine / codec.

    Unlike the Table 3 rows these run end-to-end today — PyLite compiles
    straight to the LVM, so no Clay sources are needed.
    """
    return (
        TargetPackage(
            name="parseint",
            language="pylite",
            ptype="System",
            description="Integer parser (sign + digit loop)",
            source=PL.PARSEINT_SOURCE,
            test_inputs=tuple(PL.PARSEINT_TEST["inputs"]),
            test_body=PL.PARSEINT_TEST["body"],
        ),
        TargetPackage(
            name="turnstile",
            language="pylite",
            ptype="System",
            description="Turnstile state machine with an audited invariant",
            source=PL.TURNSTILE_SOURCE,
            test_inputs=tuple(PL.TURNSTILE_TEST["inputs"]),
            test_body=PL.TURNSTILE_TEST["body"],
            documented_exceptions=frozenset({"RuntimeError"}),
        ),
        TargetPackage(
            name="rle",
            language="pylite",
            ptype="Office",
            description="Run-length codec with an audited round-trip",
            source=PL.RLE_SOURCE,
            test_inputs=tuple(PL.RLE_TEST["inputs"]),
            test_body=PL.RLE_TEST["body"],
        ),
    )


@lru_cache(maxsize=None)
def _target_index() -> Dict[str, TargetPackage]:
    return {
        target.name: target
        for target in _python_targets() + _lua_targets() + _pylite_targets()
    }


def python_targets() -> List[TargetPackage]:
    return list(_python_targets())


def lua_targets() -> List[TargetPackage]:
    return list(_lua_targets())


def pylite_targets() -> List[TargetPackage]:
    return list(_pylite_targets())


def all_targets() -> List[TargetPackage]:
    return list(_python_targets() + _lua_targets() + _pylite_targets())


def target_by_name(name: str) -> TargetPackage:
    """O(1) lookup over the memoized registry (targets are immutable)."""
    try:
        return _target_index()[name]
    except KeyError:
        raise KeyError(f"unknown target {name!r}") from None
