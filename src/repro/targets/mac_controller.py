"""The NICE evaluation workload (§6.6, Fig. 12): an OpenFlow MAC-learning
switch controller written in MiniPy.

The controller receives Ethernet frames and updates a forwarding table
stored in a dictionary — the data structure whose hashing and interning
behaviour drives the paper's Fig. 12 optimization curves.  Each frame
contributes a symbolic source MAC, destination MAC and frame type.
"""

CONTROLLER_SOURCE = '''
# MAC-learning switch controller (NICE's evaluation target).

def make_switch():
    switch = {}
    switch["table"] = {}
    switch["flood_count"] = 0
    switch["drop_count"] = 0
    return switch

def process_frame(switch, src, dst, ftype, in_port):
    table = switch["table"]
    if ftype != 2048 and ftype != 2054:
        switch["drop_count"] = switch["drop_count"] + 1
        return -2
    table[src] = in_port
    if dst in table:
        out_port = table[dst]
        if out_port == in_port:
            switch["drop_count"] = switch["drop_count"] + 1
            return -2
        return out_port
    switch["flood_count"] = switch["flood_count"] + 1
    return -1
'''


def driver_source(n_frames: int) -> str:
    """Driver exercising the controller with ``n_frames`` symbolic frames.

    MACs are small symbolic integers (NICE models them the same way) and
    the frame type is symbolic 16-bit-ish; ports cycle concretely.
    """
    lines = ["switch = make_switch()"]
    for i in range(n_frames):
        lines.append(f"src{i} = sym_int(0, 0, 3)")
        lines.append(f"dst{i} = sym_int(0, 0, 3)")
        lines.append(f"ftype{i} = sym_int(2048, 2047, 2050)")
        lines.append(
            f"out{i} = process_frame(switch, src{i}, dst{i}, ftype{i}, {i % 4})"
        )
        lines.append(f"print(out{i})")
    return CONTROLLER_SOURCE.rstrip() + "\n\n" + "\n".join(lines) + "\n"
