"""Testing targets: the reproduction's analogue of the paper's 11 packages.

Each target is a real little library written *in the guest language*
(MiniPy, MiniLua or PyLite) with the same role, input-dependent control
flow and observable behaviours as the package evaluated in the paper —
including the seeded Lua JSON comment hang (§6.2) and mini-xlrd's four
undocumented exception types (Table 3).  The three PyLite targets are the
frontend scenario pack; they compile straight to the LVM and run
end-to-end.
"""

from repro.targets.registry import (
    TargetPackage,
    all_targets,
    lua_targets,
    pylite_targets,
    python_targets,
    target_by_name,
)

__all__ = [
    "TargetPackage",
    "all_targets",
    "lua_targets",
    "pylite_targets",
    "python_targets",
    "target_by_name",
]
