"""The six MiniPy testing targets (Table 3, Python half).

Each module-level ``*_SOURCE`` constant is MiniPy code; ``*_TEST`` is the
symbolic-test body (inputs + driver) run by the benchmarks.
"""

ARGPARSE_SOURCE = '''
# mini-argparse: command-line interface generator.
# Documented exceptions: ArgumentError, ValueError, KeyError, TypeError.

def make_parser():
    parser = {}
    parser["flags"] = []
    parser["positionals"] = []
    parser["types"] = {}
    return parser

def add_argument(parser, name):
    if len(name) == 0:
        raise ValueError("empty argument name")
    kind = "str"
    if name.startswith("#"):
        kind = "int"
        name = name[1:]
        if len(name) == 0:
            raise ValueError("empty typed argument")
    if name.startswith("--"):
        flag = name[2:]
        if len(flag) == 0:
            raise ValueError("empty flag name")
        if flag in parser["flags"]:
            raise ArgumentError("conflicting option string")
        parser["flags"].append(flag)
        parser["types"][flag] = kind
    else:
        if name.isdigit():
            raise TypeError("positional name cannot be numeric")
        parser["positionals"].append(name)
        parser["types"][name] = kind
    return parser

def match_flag(parser, flag):
    found = None
    for known in parser["flags"]:
        if known.startswith(flag):
            if found != None:
                raise ArgumentError("ambiguous option")
            found = known
    if found == None:
        raise KeyError(flag)
    return found

def convert(parser, dest, text):
    kind = parser["types"][dest]
    if kind == "int":
        return int(text)
    return text

def parse_args(parser, args):
    result = {}
    pos_index = 0
    i = 0
    while i < len(args):
        arg = args[i]
        if arg.startswith("--"):
            body = arg[2:]
            eq = body.find("=")
            if eq >= 0:
                flag = match_flag(parser, body[0:eq])
                result[flag] = convert(parser, flag, body[eq + 1:])
            else:
                flag = match_flag(parser, body)
                if i + 1 >= len(args):
                    raise ArgumentError("expected one argument")
                result[flag] = convert(parser, flag, args[i + 1])
                i += 1
        else:
            if pos_index >= len(parser["positionals"]):
                raise ArgumentError("unrecognized arguments")
            dest = parser["positionals"][pos_index]
            result[dest] = convert(parser, dest, arg)
            pos_index += 1
        i += 1
    if pos_index < len(parser["positionals"]):
        raise ArgumentError("too few arguments")
    return result
'''

ARGPARSE_TEST = {
    "inputs": [("str", "arg1_name", "\x00\x00\x00"), ("str", "arg1", "\x00\x00\x00")],
    "body": """
parser = make_parser()
add_argument(parser, arg1_name)
add_argument(parser, "--out")
args = parse_args(parser, [arg1])
print(len(args))
""",
}


CONFIGPARSER_SOURCE = '''
# mini-configparser: INI-style configuration file parser.
# Documented exceptions: ParsingError.

def parse_config(text):
    sections = {}
    current = None
    lines = text.split("\\n")
    for raw in lines:
        line = raw.strip()
        if len(line) == 0:
            continue
        if line.startswith(";") or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ParsingError("unterminated section header")
            name = line[1:len(line) - 1].strip()
            if len(name) == 0:
                raise ParsingError("empty section name")
            if name not in sections:
                sections[name] = {}
            current = name
        else:
            eq = line.find("=")
            if eq < 0:
                raise ParsingError("line without key separator")
            if current == None:
                raise ParsingError("option before any section")
            key = line[0:eq].strip().lower()
            value = line[eq + 1:].strip()
            if len(key) == 0:
                raise ParsingError("empty option name")
            section = sections[current]
            section[key] = value
    return sections

def get_option(sections, section, key):
    if section not in sections:
        raise ParsingError("no such section")
    options = sections[section]
    return options.get(key.lower(), None)
'''

CONFIGPARSER_TEST = {
    "inputs": [("str", "cfg", "[s]\x00k=v\x00")],
    "body": """
conf = parse_config(cfg.replace("\\x00", "\\n"))
print(len(conf))
""",
}


HTMLPARSER_SOURCE = '''
# mini-htmlparser: HTML tag scanner with entity decoding and tag matching.
# Documented exceptions: HTMLParseError.

def decode_entities(text):
    result = ""
    i = 0
    while i < len(text):
        c = text[i]
        if c == "&":
            semi = text[i:].find(";")
            if semi < 0:
                raise HTMLParseError("unterminated entity")
            entity = text[i + 1:i + semi]
            if entity == "amp":
                result = result + "&"
            elif entity == "lt":
                result = result + "<"
            elif entity == "gt":
                result = result + ">"
            else:
                raise HTMLParseError("unknown entity")
            i = i + semi + 1
        else:
            result = result + c
            i += 1
    return result

def parse_html(text):
    events = []
    stack = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "<":
            close = text[i:].find(">")
            if close < 0:
                raise HTMLParseError("unterminated tag")
            inner = text[i + 1:i + close]
            if len(inner) == 0:
                raise HTMLParseError("empty tag")
            if inner.startswith("/"):
                name = inner[1:].strip().lower()
                if len(stack) == 0:
                    raise HTMLParseError("close without open")
                top = stack.pop()
                if top != name:
                    raise HTMLParseError("mismatched close tag")
                events.append(["end", name])
            else:
                sp = inner.find(" ")
                if sp >= 0:
                    name = inner[0:sp].lower()
                else:
                    name = inner.lower()
                if not name.isalpha():
                    raise HTMLParseError("bad tag name")
                stack.append(name)
                events.append(["start", name])
            i = i + close + 1
        else:
            text_end = text[i:].find("<")
            if text_end < 0:
                chunk = text[i:]
                i = n
            else:
                chunk = text[i:i + text_end]
                i = i + text_end
            events.append(["data", decode_entities(chunk)])
    if len(stack) > 0:
        raise HTMLParseError("unclosed tags at end of input")
    return events
'''

HTMLPARSER_TEST = {
    "inputs": [("str", "html", "<a></a>\x00")],
    "body": """
events = parse_html(html)
print(len(events))
""",
}


SIMPLEJSON_SOURCE = '''
# mini-simplejson: JSON decoder (objects, arrays, strings, ints, keywords).
# Documented exceptions: JSONDecodeError, ValueError.

def skip_ws(text, i):
    while i < len(text):
        c = text[i]
        if c == " " or c == "\\t" or c == "\\n" or c == "\\r":
            i += 1
        else:
            break
    return i

def parse_string(text, i):
    if i >= len(text):
        raise JSONDecodeError("unexpected end of input")
    if text[i] != "\\"":
        raise JSONDecodeError("expected string")
    i += 1
    result = ""
    while True:
        if i >= len(text):
            raise JSONDecodeError("unterminated string")
        c = text[i]
        if c == "\\"":
            return [result, i + 1]
        if c == "\\\\":
            if i + 1 >= len(text):
                raise JSONDecodeError("bad escape")
            esc = text[i + 1]
            if esc == "n":
                result = result + "\\n"
            elif esc == "t":
                result = result + "\\t"
            elif esc == "\\"":
                result = result + "\\""
            elif esc == "\\\\":
                result = result + "\\\\"
            else:
                raise ValueError("invalid escape character")
            i += 2
        else:
            result = result + c
            i += 1

def parse_number(text, i):
    start = i
    if i < len(text) and text[i] == "-":
        i += 1
    digits = 0
    while i < len(text) and text[i].isdigit():
        i += 1
        digits += 1
    if digits == 0:
        raise JSONDecodeError("bad number")
    return [int(text[start:i]), i]

def parse_value(text, i, depth):
    if depth > 6:
        raise JSONDecodeError("too deeply nested")
    i = skip_ws(text, i)
    if i >= len(text):
        raise JSONDecodeError("unexpected end of input")
    c = text[i]
    if c == "{":
        return parse_object(text, i, depth)
    if c == "[":
        return parse_array(text, i, depth)
    if c == "\\"":
        return parse_string(text, i)
    if text[i:].startswith("true"):
        return [True, i + 4]
    if text[i:].startswith("false"):
        return [False, i + 5]
    if text[i:].startswith("null"):
        return [None, i + 4]
    return parse_number(text, i)

def parse_array(text, i, depth):
    items = []
    i = skip_ws(text, i + 1)
    if i < len(text) and text[i] == "]":
        return [items, i + 1]
    while True:
        pair = parse_value(text, i, depth + 1)
        items.append(pair[0])
        i = skip_ws(text, pair[1])
        if i >= len(text):
            raise JSONDecodeError("unterminated array")
        if text[i] == "]":
            return [items, i + 1]
        if text[i] != ",":
            raise JSONDecodeError("expected comma in array")
        i += 1

def parse_object(text, i, depth):
    obj = {}
    i = skip_ws(text, i + 1)
    if i < len(text) and text[i] == "}":
        return [obj, i + 1]
    while True:
        i = skip_ws(text, i)
        if i >= len(text):
            raise JSONDecodeError("unterminated object")
        key_pair = parse_string(text, i)
        i = skip_ws(text, key_pair[1])
        if i >= len(text) or text[i] != ":":
            raise JSONDecodeError("expected colon")
        value_pair = parse_value(text, i + 1, depth + 1)
        obj[key_pair[0]] = value_pair[0]
        i = skip_ws(text, value_pair[1])
        if i >= len(text):
            raise JSONDecodeError("unterminated object")
        if text[i] == "}":
            return [obj, i + 1]
        if text[i] != ",":
            raise JSONDecodeError("expected comma in object")
        i += 1

def loads(text):
    pair = parse_value(text, 0, 0)
    end = skip_ws(text, pair[1])
    if end != len(text):
        raise JSONDecodeError("trailing data")
    return pair[0]
'''

SIMPLEJSON_TEST = {
    "inputs": [("str", "doc", "[1]   ")],
    "body": """
value = loads(doc.strip())
print(1)
""",
}


UNICODECSV_SOURCE = '''
# mini-unicodecsv: CSV reader with quoting.
# Documented exceptions: CSVError.

def parse_line(line):
    fields = []
    field = ""
    i = 0
    n = len(line)
    in_quotes = False
    while i < n:
        c = line[i]
        if in_quotes:
            if c == "\\"":
                if i + 1 < n and line[i + 1] == "\\"":
                    field = field + "\\""
                    i += 1
                else:
                    in_quotes = False
            else:
                field = field + c
        else:
            if c == "\\"":
                if len(field) > 0:
                    raise CSVError("quote inside unquoted field")
                in_quotes = True
            elif c == ",":
                fields.append(field)
                field = ""
            else:
                field = field + c
        i += 1
    if in_quotes:
        raise CSVError("unterminated quoted field")
    fields.append(field)
    return fields

def parse_csv(text):
    rows = []
    width = -1
    for line in text.split("\\n"):
        if len(line) == 0:
            continue
        row = parse_line(line)
        if width < 0:
            width = len(row)
        elif len(row) != width:
            raise CSVError("inconsistent row width")
        rows.append(row)
    return rows
'''

UNICODECSV_TEST = {
    "inputs": [("str", "data", "a,b\x00\x00\x00")],
    "body": """
rows = parse_csv(data)
print(len(rows))
""",
}


XLRD_SOURCE = '''
# mini-xlrd: reader for a BIFF-like binary workbook record stream.
# Documented exceptions: XLRDError.
# (The paper found four *undocumented* exception types in xlrd:
#  BadZipfile, IndexError, error, and AssertionError — all reachable here.)

def read_u16(data, pos):
    lo = ord(data[pos])
    hi = ord(data[pos + 1])
    return lo + hi * 256

def check_magic(data):
    if len(data) < 2:
        raise XLRDError("file too short")
    if data.startswith("PK"):
        raise BadZipfile("workbook is a zip archive")
    if not data.startswith("BF"):
        raise XLRDError("unsupported file format")

def read_record(data, pos):
    rtype = ord(data[pos])
    length = ord(data[pos + 1])
    if rtype > 9:
        raise error("unknown record type")
    payload = data[pos + 2:pos + 2 + length]
    assert len(payload) == length
    return [rtype, payload, pos + 2 + length]

def open_workbook(data):
    check_magic(data)
    pos = 2
    sheets = []
    cells = 0
    while pos < len(data):
        record = read_record(data, pos)
        rtype = record[0]
        payload = record[1]
        pos = record[2]
        if rtype == 1:
            sheets.append(payload)
        elif rtype == 2:
            if len(payload) < 2:
                raise XLRDError("truncated cell record")
            cells += read_u16(payload, 0)
        elif rtype == 9:
            break
    book = {}
    book["sheets"] = sheets
    book["cells"] = cells
    return book
'''

XLRD_TEST = {
    "inputs": [("str", "data", "BF\x00\x00\x00\x00")],
    "body": """
book = open_workbook(data)
print(book["cells"])
""",
}
