"""Bug hunt: find the Lua JSON parser's infinite loop (§6.2).

The sb-JSON-style parser accepts /* */ and // comments "for convenience";
an unterminated comment makes its tokenizer spin forever.  JSON payloads
are usually machine-generated, so conventional testing never tries such
inputs — but an attacker can mount a denial of service with one.  The
Chef-generated Lua engine finds it automatically: states that exhaust the
per-path budget are flagged as potential hangs.

Run:  python examples/json_hang_hunt.py
"""

from repro import ChefConfig
from repro.symtest import SymbolicTestRunner
from repro.targets import target_by_name


def main() -> None:
    package = target_by_name("JSON")
    runner = SymbolicTestRunner(
        package.source,
        package.symbolic_test(),
        ChefConfig(
            strategy="cupa-path",
            seed=1,
            time_budget=10.0,
            # The hang detector: the paper bounds each test at 60 seconds;
            # we bound executed instructions.  Generous enough that no
            # legitimate parse of a 6-byte input comes close.
            path_instr_budget=250_000,
        ),
    )
    result = runner.run_symbolic()
    hangs = result.suite.hangs()

    print(f"explored {result.ll_paths} paths; {len(hangs)} hang(s) found")
    shown = set()
    for case in hangs[:10]:
        payload = case.input_string("b0")
        if payload in shown:
            continue
        shown.add(payload)
        print(f"  hanging JSON input: {payload!r}")

    assert hangs, "expected to find the unterminated-comment hang"
    commentless = [c for c in hangs if "/" not in c.input_string("b0")]
    print()
    print("every hanging input contains a comment opener:",
          "yes" if not commentless else "NO (unexpected!)")


if __name__ == "__main__":
    main()
