"""Quickstart: turn the MiniPy interpreter into a symbolic execution
engine and generate tests for the paper's validateEmail example (Fig. 2).

Run:  python examples/quickstart.py
"""

from repro import ChefConfig, MiniPyEngine

SOURCE = '''
def validate_email(email):
    at_sign_pos = email.find("@")
    if at_sign_pos < 3:
        raise InvalidEmailError("user part too short")
    return at_sign_pos

email = sym_string("\\x00\\x00\\x00\\x00\\x00\\x00")
try:
    print(validate_email(email))
except InvalidEmailError:
    print(-1)
'''


def main() -> None:
    engine = MiniPyEngine(
        SOURCE,
        ChefConfig(strategy="cupa-path", seed=0, time_budget=5.0),
    )
    result = engine.run()

    print(f"explored {result.ll_paths} low-level paths, "
          f"{result.hl_paths} high-level paths in {result.duration:.1f}s")
    print()
    print("generated test cases (one per high-level path):")
    for case in result.hl_test_cases:
        email = case.input_string("b0")
        replay = engine.replay(case)
        verdict = "rejected" if replay.output[:2] == [1, -1] else "accepted"
        print(f"  email={email!r:24s} -> {verdict}")

    # Replay one test in the vanilla host interpreter to confirm.
    case = result.hl_test_cases[0]
    replay = engine.replay(case)
    assert replay.output == case.output, "replay must match symbolic run"
    print()
    print("replay in the vanilla interpreter matches the symbolic run ✓")


if __name__ == "__main__":
    main()
