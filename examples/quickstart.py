"""Quickstart: turn the MiniPy interpreter into a symbolic execution
engine and generate tests for the paper's validateEmail example (Fig. 2),
streaming test cases as exploration discovers them.

Run:  python examples/quickstart.py
"""

from repro import ChefConfig, Session, TestCaseFound

SOURCE = '''
def validate_email(email):
    at_sign_pos = email.find("@")
    if at_sign_pos < 3:
        raise InvalidEmailError("user part too short")
    return at_sign_pos

email = sym_string("\\x00\\x00\\x00\\x00\\x00\\x00")
try:
    print(validate_email(email))
except InvalidEmailError:
    print(-1)
'''


def main() -> None:
    session = Session(
        "minipy",
        SOURCE,
        ChefConfig(strategy="cupa-path", seed=0, time_budget=5.0),
    )

    # Stream test cases as exploration finds them (session.run() is the
    # blocking equivalent and returns the same RunResult).
    print("generated test cases (one per high-level path):")
    for event in session.events():
        if isinstance(event, TestCaseFound):
            case = event.case
            email = case.input_string("b0")
            replay = session.replay(case)
            verdict = "rejected" if replay.output[:2] == [1, -1] else "accepted"
            print(f"  email={email!r:24s} -> {verdict}")

    result = session.result
    print()
    print(f"explored {result.ll_paths} low-level paths, "
          f"{result.hl_paths} high-level paths in {result.duration:.1f}s")

    # Replay one test in the vanilla host interpreter to confirm.
    case = result.hl_test_cases[0]
    replay = session.replay(case)
    assert replay.output == case.output, "replay must match symbolic run"
    print()
    print("replay in the vanilla interpreter matches the symbolic run ✓")


if __name__ == "__main__":
    main()
