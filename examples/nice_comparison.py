"""Chef vs. a hand-written engine on NICE's OpenFlow workload (§6.6).

Runs the MAC-learning switch controller under (a) the Chef-generated
MiniPy engine at several interpreter-optimization levels and (b) the
dedicated NICE-style concolic engine, then prints the per-high-level-path
overhead — a miniature of the paper's Fig. 12.

Run:  python examples/nice_comparison.py
"""

import time

from repro import ChefConfig, InterpreterBuildOptions, MiniPyEngine
from repro.dedicated import DedicatedNiceEngine
from repro.targets.mac_controller import driver_source

FRAMES = 2
BUDGET = 3.0


def main() -> None:
    source = driver_source(FRAMES)

    nice = DedicatedNiceEngine(source)
    nice_result = nice.run(time_budget=BUDGET)
    nice_tpp = nice_result.duration / max(nice_result.paths, 1)
    print(f"dedicated engine: {nice_result.paths} paths, "
          f"{1000 * nice_tpp:.2f} ms/path")
    print()

    labels = InterpreterBuildOptions.cumulative_labels()
    for level in range(4):
        engine = MiniPyEngine(
            source,
            ChefConfig(
                strategy="cupa-path",
                seed=0,
                time_budget=BUDGET,
                interpreter_options=InterpreterBuildOptions.cumulative(level),
            ),
        )
        result = engine.run()
        chef_tpp = result.duration / max(result.hl_paths, 1)
        print(f"CHEF {labels[level]:30s} {result.hl_paths:4d} HL paths, "
              f"{1000 * chef_tpp:8.2f} ms/path "
              f"({chef_tpp / nice_tpp:7.1f}x the dedicated engine)")

    print()
    print("expected shape (paper Fig. 12): overhead drops by orders of")
    print("magnitude as optimizations are added, but Chef stays slower —")
    print("the price of reusing the interpreter instead of rewriting it.")


if __name__ == "__main__":
    main()
