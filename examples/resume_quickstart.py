"""Checkpoint/resume quickstart: survive a mid-campaign crash.

Runs a branchy Clay guest with ``checkpoint_dir`` set, abandons the
campaign partway through (standing in for a crash or SIGKILL), then
resumes from the checkpoint and shows the resumed run finishing the
*identical* test-case multiset a crash-free run produces:

- the engine checkpoints the pending frontier, the high-level tree,
  the suite so far, and the model-cache journal every
  ``checkpoint_every`` paths (serial) or rounds (parallel);
- saves are torn-write safe (temp file + fsync + atomic rename; loads
  recover the longest valid frame prefix and count the damage under
  ``checkpoint.corrupt_frames_skipped``);
- ``Session.resume(path)`` re-emits the checkpointed path events and
  explores the rest, so downstream consumers see one complete stream.

Run:  python examples/resume_quickstart.py
"""

import tempfile
from collections import Counter

from repro import CheckpointSaved, ChefConfig, Session, TestCaseFound
from repro.bench.workloads import branchy_source
from repro.clay import compile_program


def case_key(case):
    return (
        tuple(sorted((k, tuple(v)) for k, v in case.inputs.items())),
        case.status,
        case.hl_path_signature,
    )


def main() -> None:
    compiled = compile_program(branchy_source(5))  # 32 feasible paths

    # Baseline: a crash-free run, for the equality check at the end.
    baseline = Session.from_program(
        compiled.program, ChefConfig(time_budget=30.0)
    )
    baseline_cases = Counter(
        case_key(e.case)
        for e in baseline.events()
        if isinstance(e, TestCaseFound)
    )
    print(f"crash-free run: {baseline.result.ll_paths} paths")

    with tempfile.TemporaryDirectory() as ckpt_dir:
        # Doomed campaign: abandon it right after the first checkpoint
        # lands (a SIGKILL between checkpoints plays out the same way).
        doomed = Session.from_program(
            compiled.program,
            ChefConfig(
                time_budget=30.0, checkpoint_dir=ckpt_dir, checkpoint_every=4
            ),
        )
        stream = doomed.events()
        seen = 0
        for event in stream:
            if isinstance(event, TestCaseFound):
                seen += 1
            if isinstance(event, CheckpointSaved):
                print(
                    f"checkpointed at {event.path} "
                    f"({event.frontier} frontier states, {event.cases} cases)"
                )
                break
        stream.close()
        print(f"campaign 'crashed' after {seen} test cases")

        # Resume: the stream replays the checkpointed cases and then
        # finishes the frontier — one complete, identical multiset.
        resumed = Session.resume(ckpt_dir)
        resumed_cases = Counter(
            case_key(e.case)
            for e in resumed.events()
            if isinstance(e, TestCaseFound)
        )
        print(
            f"resumed run: {resumed.result.ll_paths} paths, "
            f"checkpoint.resumes="
            f"{resumed.metrics().get('checkpoint.resumes')}"
        )
        assert resumed_cases == baseline_cases, "multisets must match"
        print("resumed test-case multiset == crash-free multiset")


if __name__ == "__main__":
    main()
