"""Exception exploration (§6.2): find undocumented exceptions in mini-xlrd.

The paper's headline bug-finding result: the Excel reader raises four
exception types its documentation never mentions (BadZipfile, IndexError,
error, AssertionError), which callers therefore never catch.  The
Chef-generated engine synthesises workbook bytes that trigger each one.

Run:  python examples/exception_hunting.py
"""

from repro import ChefConfig, InterpreterBuildOptions
from repro.symtest import SymbolicTestRunner
from repro.targets import target_by_name


def main() -> None:
    package = target_by_name("xlrd")
    runner = SymbolicTestRunner(
        package.source,
        package.symbolic_test(),
        ChefConfig(
            strategy="cupa-path",
            seed=0,
            time_budget=8.0,
            interpreter_options=InterpreterBuildOptions.full(),
        ),
    )
    result = runner.run_symbolic()

    print(f"{result.hl_paths} high-level paths explored")
    print()
    print(f"{'exception':16s} {'classified':14s} example workbook bytes")
    for type_id, cases in sorted(result.suite.exceptions().items()):
        name = runner.engine.exception_name(type_id)
        classification = (
            "documented" if package.is_documented(name) else "UNDOCUMENTED"
        )
        sample = cases[0].input_string("b0")
        print(f"{name:16s} {classification:14s} {sample!r}")

    undocumented = [
        runner.engine.exception_name(t)
        for t in result.suite.exceptions()
        if not package.is_documented(runner.engine.exception_name(t))
    ]
    print()
    print(f"undocumented exception types found: {sorted(undocumented)}")
    print("(the paper reports BadZipfile, IndexError, error, AssertionError)")


if __name__ == "__main__":
    main()
