"""Quickstart for the PyLite frontend: real Python source, compiled
ast → TAC → CFG straight onto the LVM — no interpreter in the loop —
then explored symbolically and differentially replayed under CPython.

Run:  python examples/pylite_quickstart.py
"""

from repro import ChefConfig, Session, TestCaseFound
from repro.frontend import compile_pylite
from repro.interpreters.pylite.engine import PyLiteEngine

# Plain Python (inside the PyLite subset): this exact text also runs
# under CPython, which is what makes the differential check an oracle.
SOURCE = '''
def parse_digit_pair(text):
    if len(text) != 2:
        raise ValueError("need exactly two characters")
    total = 0
    for i in range(2):
        d = ord(text[i])
        if d < 48:
            raise ValueError("not a digit")
        if d > 57:
            raise ValueError("not a digit")
        total = total * 10 + (d - 48)
    return total

text = sym_string("42")
print(parse_digit_pair(text))
'''


def main() -> None:
    # 1. The compiled artifact: inspect the IR and CFG the frontend built.
    compiled = compile_pylite(SOURCE)
    print("three-address IR (first lines):")
    for line in compiled.dump_ir().splitlines()[:8]:
        print(" ", line)
    print("  ...")
    print()
    print("control-flow graph:")
    print(compiled.dump_cfg().split("\n\n")[-1])
    print()

    # 2. One register_language call made "pylite" a Session language —
    #    exploration, replay and coverage work like any other guest.
    session = Session("pylite", SOURCE, ChefConfig(time_budget=10.0))
    print("generated test cases (one per high-level path):")
    for event in session.events():
        if isinstance(event, TestCaseFound):
            case = event.case
            text = case.input_string("b0")
            exc = (
                session.exception_name(case.exception_type)
                if case.exception_type is not None
                else "ok"
            )
            print(f"  text={text!r:8s} -> {exc}")
    result = session.result
    print()
    print(f"explored {result.ll_paths} low-level paths, "
          f"{result.hl_paths} high-level paths in {result.duration:.1f}s")

    # 3. The §6.6 analogue: every generated input re-executed concretely
    #    under vanilla CPython; outputs and exceptions must match.
    engine = PyLiteEngine(SOURCE)
    reports = engine.differential_sweep(result.suite)
    assert all(r.matches for r in reports), [r.detail for r in reports]
    print()
    print(f"CPython differential replay: {len(reports)}/{len(reports)} match ✓")


if __name__ == "__main__":
    main()
