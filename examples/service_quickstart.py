"""Service quickstart: a daemon, two concurrent tenants, shared cache.

Starts a :class:`ChefService` in a background thread (in production
you'd run ``python -m repro.service serve --socket ... &``), then:

- runs TWO sessions of the same branchy Clay target *concurrently*
  through the daemon and shows that their path-event multisets are
  identical to each other — the per-tenant determinism contract — and
  that the Program image shipped to the shared worker pool exactly
  once (``program_ships == 1``: tenants share warm workers, not just
  a socket);
- runs the same target again (a "warm" tenant) and prints the
  cross-run cache counters: with a cache directory configured, solver
  verdicts persisted by the first runs are reloaded and reused, so the
  warm run re-solves nothing (``service.cache.cross_run_hits > 0``).

Run:  python examples/service_quickstart.py
"""

import tempfile
import threading
import time

from repro.bench.workloads import branchy_source
from repro.service import ChefService, ServiceClient, ServiceConfig
from repro.service.protocol import path_event_multiset

workdir = tempfile.mkdtemp(prefix="repro-service-")
config = ServiceConfig(
    socket_path=f"{workdir}/repro.sock",
    workers=2,
    max_sessions=8,
    max_time_budget=60.0,
    cache_dir=f"{workdir}/cache",
)
service = ChefService(config)
threading.Thread(target=service.serve_forever, daemon=True).start()

client = ServiceClient(config.socket_path)
while True:  # wait for the socket to come up
    try:
        client.ping()
        break
    except OSError:
        time.sleep(0.05)

source = branchy_source(4)  # 16 feasible paths

# -- two concurrent tenants, one shared pool -----------------------------------
outcomes = {}


def tenant(tag: str) -> None:
    events, result = client.run(clay=source)
    outcomes[tag] = (path_event_multiset(events), result)


threads = [threading.Thread(target=tenant, args=(t,)) for t in ("alice", "bob")]
for t in threads:
    t.start()
for t in threads:
    t.join()

(alice_paths, alice_result), (bob_paths, bob_result) = (
    outcomes["alice"],
    outcomes["bob"],
)
assert alice_paths == bob_paths, "per-tenant determinism contract"
stats = client.stats()
print(
    f"concurrent tenants: {alice_result['ll_paths']} paths each, "
    f"identical path multisets; pool spawned {stats['pool']['spawns']} "
    f"workers, shipped the program {stats['pool']['program_ships']}x"
)

# -- a warm third run reuses persisted solver verdicts -------------------------
_events, warm_result = client.run(clay=source)
metrics = client.stats()["metrics"]
print(
    f"warm run: {warm_result['ll_paths']} paths, "
    f"{metrics.get('service.cache.persistent_loaded', 0)} cache entries "
    f"loaded from disk, "
    f"{metrics.get('service.cache.cross_run_hits', 0)} cross-run hits "
    f"(verdicts reused instead of re-solved)"
)
print(f"sessions/sec so far: {metrics['service.sessions_per_sec']:.2f}")

client.shutdown()
