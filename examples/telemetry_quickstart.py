"""Telemetry quickstart: trace a run, read the metrics, export a trace.

Explores a branchy Clay guest twice — serially and across two worker
processes — with tracing on, then:

- prints the metric snapshot both RunResult and Session.metrics() are
  views of (one registry, no parallel bookkeeping paths),
- prints the plain-text span summary (slowest solver queries included),
- writes Chrome trace files you can open in chrome://tracing or
  https://ui.perfetto.dev — the parallel one shows the coordinator's
  ship/merge spans lined up against the worker lanes, which is the
  picture that explains sub-1x "speedups" on small workloads.

Run:  python examples/telemetry_quickstart.py
"""

from repro import ChefConfig, MetricsUpdated, Session
from repro.bench.workloads import branchy_source
from repro.clay import compile_program
from repro.obs.export import summary_table


def explore(workers: int) -> Session:
    compiled = compile_program(branchy_source(5))  # 32 feasible paths
    session = Session.from_program(
        compiled.program,
        ChefConfig(time_budget=30.0, workers=workers, trace=True),
    )
    updates = 0
    for event in session.events():
        if isinstance(event, MetricsUpdated):
            updates += 1
    result = session.result
    print(
        f"workers={workers}: {result.ll_paths} paths, "
        f"{result.solver_stats['queries']} solver queries, "
        f"{updates} MetricsUpdated events"
    )
    return session


def main() -> None:
    serial = explore(workers=1)
    parallel = explore(workers=2)

    metrics = serial.metrics()
    print("\nkey metrics (serial run):")
    for name in ("engine.paths_completed", "solver.queries", "cache.hits",
                 "cache.stores", "solver.incremental_hits"):
        if name in metrics:
            print(f"  {name} = {metrics[name]}")

    print("\n" + summary_table(parallel.telemetry))

    serial.write_chrome_trace("trace_serial.json")
    parallel.write_chrome_trace("trace_parallel.json")
    lanes = sorted({e["lane"] for e in parallel.telemetry.events})
    print(f"\nwrote trace_serial.json and trace_parallel.json (lanes: {lanes})")
    print("open them at https://ui.perfetto.dev")


if __name__ == "__main__":
    main()
